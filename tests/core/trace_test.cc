// Trace recorder unit tests: disabled no-op behavior, span pairing, typed
// arg round-trips, ring wraparound accounting, snapshot ordering, and the
// Chrome trace-event JSON exporter — including a golden-file schema test
// driven by a SimClock so every byte of the artifact is deterministic
// (thread ids excepted; the golden file holds a @TID@ placeholder).

#include "core/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/clock.h"
#include "util/thread_util.h"

namespace kflush {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global()->ResetForTesting(); }
  void TearDown() override { Tracer::Global()->ResetForTesting(); }
};

TEST_F(TraceTest, DisabledEmitRecordsNothing) {
  Tracer* tracer = Tracer::Global();
  ASSERT_FALSE(tracer->enabled());
  KFLUSH_TRACE_INSTANT("test", "ignored", TraceArg::Int("x", 1));
  {
    TraceSpan span("test", "ignored_span");
    span.End({TraceArg::Bool("ok", true)});
  }
  EXPECT_EQ(tracer->events_emitted(), 0u);
  EXPECT_EQ(tracer->events_dropped(), 0u);
  EXPECT_TRUE(tracer->Snapshot().empty());
}

TEST_F(TraceTest, SpanEmitsBalancedBeginEnd) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  {
    TraceSpan span("cat", "work", {TraceArg::Uint("in", 7)});
    KFLUSH_TRACE_INSTANT("cat", "mid");
  }  // destructor ends the span
  tracer->Stop();

  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].type, TraceEventType::kSpanBegin);
  EXPECT_STREQ(events[0].name, "work");
  EXPECT_STREQ(events[0].category, "cat");
  EXPECT_EQ(events[1].type, TraceEventType::kInstant);
  EXPECT_STREQ(events[1].name, "mid");
  EXPECT_EQ(events[2].type, TraceEventType::kSpanEnd);
  EXPECT_STREQ(events[2].name, "work");
  // Begin and end carry the same tid, and time does not run backwards.
  EXPECT_EQ(events[0].tid, events[2].tid);
  EXPECT_LE(events[0].ts_micros, events[2].ts_micros);
}

TEST_F(TraceTest, SpanEndIsIdempotent) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  {
    TraceSpan span("cat", "once");
    span.End({TraceArg::Str("outcome", "early")});
  }  // destructor must not emit a second end
  EXPECT_EQ(tracer->events_emitted(), 2u);
}

TEST_F(TraceTest, ArgsRoundTripAllKinds) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  KFLUSH_TRACE_INSTANT("test", "typed", TraceArg::Int("i", -42),
                       TraceArg::Uint("u", 1ull << 63),
                       TraceArg::Double("d", 2.5),
                       TraceArg::Str("s", "hello"),
                       TraceArg::Bool("b", false));
  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  const TraceEvent& e = events[0];
  ASSERT_EQ(e.num_args, 5u);
  EXPECT_STREQ(e.args[0].key, "i");
  EXPECT_EQ(e.args[0].kind, TraceArg::Kind::kInt64);
  EXPECT_EQ(e.args[0].value.i64, -42);
  EXPECT_STREQ(e.args[1].key, "u");
  EXPECT_EQ(e.args[1].kind, TraceArg::Kind::kUint64);
  EXPECT_EQ(e.args[1].value.u64, 1ull << 63);
  EXPECT_STREQ(e.args[2].key, "d");
  EXPECT_EQ(e.args[2].kind, TraceArg::Kind::kDouble);
  EXPECT_EQ(e.args[2].value.f64, 2.5);
  EXPECT_STREQ(e.args[3].key, "s");
  EXPECT_EQ(e.args[3].kind, TraceArg::Kind::kString);
  EXPECT_STREQ(e.args[3].value.str, "hello");
  EXPECT_STREQ(e.args[4].key, "b");
  EXPECT_EQ(e.args[4].kind, TraceArg::Kind::kString);  // bools encode as strings
  EXPECT_STREQ(e.args[4].value.str, "false");
}

TEST_F(TraceTest, ExcessArgsAreClamped) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  tracer->Emit(TraceEventType::kInstant, "test", "wide",
               {TraceArg::Int("a0", 0), TraceArg::Int("a1", 1),
                TraceArg::Int("a2", 2), TraceArg::Int("a3", 3),
                TraceArg::Int("a4", 4), TraceArg::Int("a5", 5),
                TraceArg::Int("a6", 6), TraceArg::Int("a7", 7),
                TraceArg::Int("a8", 8), TraceArg::Int("a9", 9)});
  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].num_args, kMaxTraceArgs);
  EXPECT_EQ(events[0].args[kMaxTraceArgs - 1].value.i64,
            static_cast<int64_t>(kMaxTraceArgs - 1));
}

TEST_F(TraceTest, WraparoundKeepsNewestAndCountsDrops) {
  Tracer* tracer = Tracer::Global();
  tracer->Start(/*capacity_per_thread=*/8);
  for (int i = 0; i < 20; ++i) {
    KFLUSH_TRACE_INSTANT("test", "tick", TraceArg::Int("i", i));
  }
  EXPECT_EQ(tracer->events_emitted(), 20u);
  EXPECT_EQ(tracer->events_dropped(), 12u);

  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 8u);
  // The ring keeps the newest events, in order.
  for (size_t j = 0; j < events.size(); ++j) {
    EXPECT_EQ(events[j].args[0].value.i64, static_cast<int64_t>(12 + j));
  }
}

TEST_F(TraceTest, SnapshotMergesThreadsSortedByTimestamp) {
  SimClock clock(1'000);
  Tracer* tracer = Tracer::Global();
  tracer->SetClockForTesting(&clock);
  tracer->Start();

  clock.Set(2'000);
  KFLUSH_TRACE_INSTANT("test", "late_from_main");
  clock.Set(1'500);
  std::thread worker(
      [] { KFLUSH_TRACE_INSTANT("test", "early_from_worker"); });
  worker.join();

  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 2u);
  // The worker's event carries the earlier timestamp and sorts first even
  // though it was emitted second, from another thread's ring.
  EXPECT_STREQ(events[0].name, "early_from_worker");
  EXPECT_EQ(events[0].ts_micros, 1'500u);
  EXPECT_STREQ(events[1].name, "late_from_main");
  EXPECT_EQ(events[1].ts_micros, 2'000u);
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceTest, ClearDropsEventsAndZeroesCounters) {
  Tracer* tracer = Tracer::Global();
  tracer->Start(/*capacity_per_thread=*/4);
  for (int i = 0; i < 10; ++i) KFLUSH_TRACE_INSTANT("test", "tick");
  ASSERT_GT(tracer->events_dropped(), 0u);
  tracer->Clear();
  EXPECT_EQ(tracer->events_emitted(), 0u);
  EXPECT_EQ(tracer->events_dropped(), 0u);
  EXPECT_TRUE(tracer->Snapshot().empty());
  // Recording continues after a clear.
  KFLUSH_TRACE_INSTANT("test", "after");
  EXPECT_EQ(tracer->Snapshot().size(), 1u);
}

TEST_F(TraceTest, StopKeepsEventsReadable) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  KFLUSH_TRACE_INSTANT("test", "kept");
  tracer->Stop();
  KFLUSH_TRACE_INSTANT("test", "ignored");
  const std::vector<TraceEvent> events = tracer->Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "kept");
}

TEST_F(TraceTest, EventToJsonShapesAndEscaping) {
  TraceEvent e;
  e.ts_micros = 123;
  e.tid = 9;
  e.type = TraceEventType::kInstant;
  e.category = "cat";
  e.name = "quo\"te";
  e.num_args = 2;
  e.args[0] = TraceArg::Str("msg", "a\\b\n");
  e.args[1] = TraceArg::Double("d", 0.5);
  const std::string json = TraceExporter::EventToJson(e);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos)
      << "instants need a scope for Perfetto";
  EXPECT_NE(json.find("\"ts\":123"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":9"), std::string::npos);
  EXPECT_NE(json.find("quo\\\"te"), std::string::npos);
  EXPECT_NE(json.find("a\\\\b\\n"), std::string::npos);
  EXPECT_NE(json.find("\"d\":0.5"), std::string::npos);

  e.type = TraceEventType::kSpanBegin;
  EXPECT_NE(TraceExporter::EventToJson(e).find("\"ph\":\"B\""),
            std::string::npos);
  e.type = TraceEventType::kSpanEnd;
  EXPECT_NE(TraceExporter::EventToJson(e).find("\"ph\":\"E\""),
            std::string::npos);
}

TEST_F(TraceTest, EventToJsonFlowPhases) {
  // Flow events export as Chrome phases s/t/f sharing an "id"; the end
  // point carries bp:"e" so Perfetto binds it to the enclosing slice.
  TraceEvent e;
  e.ts_micros = 50;
  e.tid = 3;
  e.category = "net";
  e.name = "request";
  e.flow_id = 42;

  e.type = TraceEventType::kFlowStart;
  std::string json = TraceExporter::EventToJson(e);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find(",\"id\":42"), std::string::npos);
  EXPECT_EQ(json.find("\"bp\""), std::string::npos);

  e.type = TraceEventType::kFlowStep;
  json = TraceExporter::EventToJson(e);
  EXPECT_NE(json.find("\"ph\":\"t\""), std::string::npos);
  EXPECT_NE(json.find(",\"id\":42"), std::string::npos);
  EXPECT_EQ(json.find("\"bp\""), std::string::npos);

  e.type = TraceEventType::kFlowEnd;
  json = TraceExporter::EventToJson(e);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find(",\"id\":42"), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
}

TEST_F(TraceTest, FlowArcLinksAcrossThreads) {
  // The request-correlation arc the net path emits: flow begin on the
  // reactor thread, step + end on a worker — all sharing the request id.
  constexpr uint64_t kRequestId = 7'777;
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  {
    TraceSpan ingest("net", "ingest");
    KFLUSH_TRACE_FLOW_BEGIN("net", "request", kRequestId,
                            TraceArg::Uint("records", 4));
  }
  std::thread worker([&] {
    TraceSpan digest("shard", "digest_batch");
    KFLUSH_TRACE_FLOW_STEP("net", "request", kRequestId);
    KFLUSH_TRACE_FLOW_END("net", "request", kRequestId);
  });
  worker.join();
  tracer->Stop();

  std::vector<TraceEvent> flows;
  for (const TraceEvent& e : tracer->Snapshot()) {
    if (e.type == TraceEventType::kFlowStart ||
        e.type == TraceEventType::kFlowStep ||
        e.type == TraceEventType::kFlowEnd) {
      flows.push_back(e);
    }
  }
  ASSERT_EQ(flows.size(), 3u);
  EXPECT_EQ(flows[0].type, TraceEventType::kFlowStart);
  EXPECT_EQ(flows[1].type, TraceEventType::kFlowStep);
  EXPECT_EQ(flows[2].type, TraceEventType::kFlowEnd);
  for (const TraceEvent& e : flows) {
    EXPECT_EQ(e.flow_id, kRequestId);
    EXPECT_STREQ(e.name, "request");
  }
  // The arc genuinely crosses threads.
  EXPECT_NE(flows[0].tid, flows[1].tid);
  EXPECT_EQ(flows[1].tid, flows[2].tid);
}

TEST_F(TraceTest, WriteFileRoundTrip) {
  Tracer* tracer = Tracer::Global();
  tracer->Start();
  KFLUSH_TRACE_INSTANT("test", "persisted", TraceArg::Uint("n", 1));
  tracer->Stop();

  const std::string path =
      ::testing::TempDir() + "/trace_write_file_roundtrip.json";
  ASSERT_TRUE(TraceExporter::WriteFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_NE(content.str().find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(content.str().find("persisted"), std::string::npos);
  EXPECT_NE(content.str().find("\"otherData\""), std::string::npos);

  EXPECT_FALSE(
      TraceExporter::WriteFile("/nonexistent-dir/trace.json").ok());
}

// --- Golden-file schema test -----------------------------------------------

std::string ReadWholeFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void ReplaceAll(std::string* s, const std::string& from,
                const std::string& to) {
  size_t pos = 0;
  while ((pos = s->find(from, pos)) != std::string::npos) {
    s->replace(pos, from.size(), to);
    pos += to.size();
  }
}

TEST_F(TraceTest, GoldenChromeTraceJson) {
  // A scripted flush-cycle vignette on a SimClock: the exported artifact
  // must match tests/core/testdata/trace_golden.json byte for byte (the
  // golden holds @TID@ where the emitting thread's logical id goes).
  SimClock clock(1'000);
  Tracer* tracer = Tracer::Global();
  tracer->SetClockForTesting(&clock);
  tracer->Start(/*capacity_per_thread=*/16);
  {
    TraceSpan cycle("flush", "cycle",
                    {TraceArg::Str("policy", "kflushing"),
                     TraceArg::Uint("bytes_needed", 4096)});
    clock.Advance(10);
    KFLUSH_TRACE_INSTANT("flush", "evict_victim", TraceArg::Int("phase", 2),
                         TraceArg::Uint("term", 7),
                         TraceArg::Int("heap_rank", 0),
                         TraceArg::Uint("order_key", 990),
                         TraceArg::Double("cost", 1.5),
                         TraceArg::Bool("entry_evicted", true));
    clock.Advance(5);
    cycle.End({TraceArg::Uint("bytes_freed", 4096)});
  }
  tracer->Stop();

  std::ostringstream actual;
  TraceExporter::WriteJson(tracer->Snapshot(), tracer->events_emitted(),
                           tracer->events_dropped(), actual);
  tracer->SetClockForTesting(nullptr);

  std::string expected = ReadWholeFile(std::string(KFLUSH_TEST_DATA_DIR) +
                                       "/trace_golden.json");
  ReplaceAll(&expected, "@TID@", std::to_string(ThisThreadId()));
  if (actual.str() != expected) {
    // Regeneration aid: the actual output with the tid swapped back to the
    // placeholder, ready to copy over the golden file.
    std::string regen = actual.str();
    ReplaceAll(&regen, "\"tid\":" + std::to_string(ThisThreadId()),
               "\"tid\":@TID@");
    std::ofstream(::testing::TempDir() + "/trace_golden_actual.json") << regen;
  }
  EXPECT_EQ(actual.str(), expected)
      << "golden mismatch; regenerated candidate at "
      << ::testing::TempDir() << "/trace_golden_actual.json";
}

}  // namespace
}  // namespace kflush
