#include "core/query_engine.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr uint32_t kK = 5;

class QueryEngineTest : public ::testing::Test {
 protected:
  QueryEngineTest()
      : store_(SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK)),
        engine_(&store_) {}

  void Ingest(MicroblogId id, Timestamp ts, std::vector<KeywordId> kws) {
    ASSERT_TRUE(store_.Insert(MakeBlog(id, ts, std::move(kws))).ok());
  }

  TopKQuery Single(TermId term) {
    TopKQuery q;
    q.terms = {term};
    q.type = QueryType::kSingle;
    return q;
  }

  TopKQuery Multi(QueryType type, TermId a, TermId b) {
    TopKQuery q;
    q.terms = {a, b};
    q.type = type;
    return q;
  }

  MicroblogStore store_;
  QueryEngine engine_;
};

TEST_F(QueryEngineTest, SingleHitWhenKInMemory) {
  for (MicroblogId id = 1; id <= 8; ++id) Ingest(id, id * 10, {1});
  auto result = engine_.Execute(Single(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->memory_hit);
  ASSERT_EQ(result->results.size(), kK);
  EXPECT_EQ(result->results[0].id, 8u);  // most recent first
  EXPECT_EQ(result->results[4].id, 4u);
  EXPECT_EQ(result->from_memory, kK);
  EXPECT_EQ(result->from_disk, 0u);
}

TEST_F(QueryEngineTest, SingleMissWhenUnderK) {
  for (MicroblogId id = 1; id <= 3; ++id) Ingest(id, id * 10, {1});
  auto result = engine_.Execute(Single(1));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  EXPECT_EQ(result->results.size(), 3u);  // disk has nothing more
}

TEST_F(QueryEngineTest, SingleMissCompletesFromDisk) {
  // Fill keyword 1 beyond k, flush so the tail moves to disk, then
  // shrink the memory side by querying a different k.
  for (MicroblogId id = 1; id <= 12; ++id) Ingest(id, id * 10, {1});
  store_.FlushOnce();  // trims to k=5 in memory, 7 postings on disk
  TopKQuery q = Single(1);
  q.k = 10;  // ask for more than memory holds
  auto result = engine_.Execute(q);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  ASSERT_EQ(result->results.size(), 10u);
  // Merged answer is the true top-10 by recency: ids 12..3 in order.
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(result->results[i].id, 12 - i);
  }
  EXPECT_GT(result->from_disk, 0u);
}

TEST_F(QueryEngineTest, UnknownTermIsMissWithEmptyAnswer) {
  auto result = engine_.Execute(Single(404));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  EXPECT_TRUE(result->results.empty());
}

TEST_F(QueryEngineTest, OrHitRequiresAllTermsKFilled) {
  for (MicroblogId id = 1; id <= 6; ++id) Ingest(id, id * 10, {1});
  for (MicroblogId id = 11; id <= 16; ++id) Ingest(id, id * 10, {2});
  auto hit = engine_.Execute(Multi(QueryType::kOr, 1, 2));
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->memory_hit);
  ASSERT_EQ(hit->results.size(), kK);
  // Union top-5 by recency: ids 16..12.
  EXPECT_EQ(hit->results[0].id, 16u);
  EXPECT_EQ(hit->results[4].id, 12u);

  // One under-k term makes it a miss.
  Ingest(100, 5, {3});
  auto miss = engine_.Execute(Multi(QueryType::kOr, 1, 3));
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->memory_hit);
  EXPECT_EQ(miss->results.size(), kK);  // still answerable
}

TEST_F(QueryEngineTest, OrDeduplicatesSharedRecords) {
  for (MicroblogId id = 1; id <= 6; ++id) Ingest(id, id * 10, {1, 2});
  auto result = engine_.Execute(Multi(QueryType::kOr, 1, 2));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), kK);
  std::set<MicroblogId> distinct;
  for (const auto& blog : result->results) distinct.insert(blog.id);
  EXPECT_EQ(distinct.size(), kK);
}

TEST_F(QueryEngineTest, AndHitOnSharedRecords) {
  for (MicroblogId id = 1; id <= 6; ++id) Ingest(id, id * 10, {1, 2});
  Ingest(100, 5, {1});  // in 1 only
  auto result = engine_.Execute(Multi(QueryType::kAnd, 1, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->memory_hit);
  ASSERT_EQ(result->results.size(), kK);
  for (const auto& blog : result->results) {
    EXPECT_NE(blog.id, 100u);
    EXPECT_EQ(blog.keywords, (std::vector<KeywordId>{1, 2}));
  }
}

TEST_F(QueryEngineTest, AndMissWhenIntersectionThin) {
  for (MicroblogId id = 1; id <= 6; ++id) Ingest(id, id * 10, {1});
  for (MicroblogId id = 11; id <= 16; ++id) Ingest(id, id * 10, {2});
  Ingest(100, 500, {1, 2});  // only shared record
  auto result = engine_.Execute(Multi(QueryType::kAnd, 1, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  ASSERT_EQ(result->results.size(), 1u);
  EXPECT_EQ(result->results[0].id, 100u);
}

TEST_F(QueryEngineTest, AndMissMergesDiskSide) {
  // Shared records pushed beyond top-k of keyword 1 and flushed from its
  // in-memory entry; AND must recover them via disk.
  for (MicroblogId id = 1; id <= 4; ++id) Ingest(id, id, {1, 2});
  for (MicroblogId id = 10; id <= 19; ++id) Ingest(id, id * 10, {1});
  store_.FlushOnce();  // keyword 1 trimmed to top-5 (ids 15..19)
  auto result = engine_.Execute(Multi(QueryType::kAnd, 1, 2));
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->memory_hit);
  ASSERT_EQ(result->results.size(), 4u);  // ids 1..4 recovered
  EXPECT_EQ(result->results[0].id, 4u);
}

TEST_F(QueryEngineTest, ValidationErrors) {
  TopKQuery empty;
  EXPECT_FALSE(engine_.Execute(empty).ok());
  TopKQuery multi_single;
  multi_single.terms = {1, 2};
  multi_single.type = QueryType::kSingle;
  EXPECT_FALSE(engine_.Execute(multi_single).ok());
}

TEST_F(QueryEngineTest, MetricsTrackHitsAndTypes) {
  for (MicroblogId id = 1; id <= 6; ++id) Ingest(id, id * 10, {1});
  ASSERT_TRUE(engine_.Execute(Single(1)).ok());   // hit
  ASSERT_TRUE(engine_.Execute(Single(99)).ok());  // miss
  ASSERT_TRUE(engine_.Execute(Multi(QueryType::kOr, 1, 99)).ok());  // miss
  auto snap = engine_.metrics();
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.memory_hits, 1u);
  EXPECT_EQ(snap.memory_misses, 2u);
  EXPECT_DOUBLE_EQ(snap.HitRatio(), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kSingle), 0.5);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kOr), 0.0);
  EXPECT_GT(snap.disk_term_reads, 0u);
  engine_.ResetMetrics();
  EXPECT_EQ(engine_.metrics().queries, 0u);
}

TEST_F(QueryEngineTest, DiskReadMetricIsExactlyTheDiskStatsDelta) {
  // Disk-read accounting has a single source of truth: the delta of the
  // disk store's own term_queries counter around each Execute call (the
  // per-call shadow counters were dead code and are gone). Cross-check the
  // metric against the disk tier's counter over a hit, a single-term miss,
  // and an OR with one short term.
  const uint64_t disk_before = store_.disk()->stats().term_queries;

  // Pure memory hit, no flush yet: the disk tier is never consulted.
  for (MicroblogId id = 1; id <= 8; ++id) Ingest(id, id * 10, {1});
  ASSERT_TRUE(engine_.Execute(Single(1)).ok());
  EXPECT_EQ(store_.disk()->stats().term_queries, disk_before);
  EXPECT_EQ(engine_.metrics().disk_term_reads, 0u);

  // Push the tail of keyword 1 to disk, then miss on purpose: exactly one
  // disk term query per short term.
  for (MicroblogId id = 9; id <= 12; ++id) Ingest(id, id * 10, {1});
  store_.FlushOnce();
  TopKQuery deep = Single(1);
  deep.k = 10;  // more than memory holds after the flush
  ASSERT_TRUE(engine_.Execute(deep).ok());
  EXPECT_EQ(store_.disk()->stats().term_queries, disk_before + 1);

  // OR with an unknown term: the short term goes to disk (term 1 may or
  // may not, depending on how much the flush evicted).
  ASSERT_TRUE(engine_.Execute(Multi(QueryType::kOr, 1, 99)).ok());
  EXPECT_GE(store_.disk()->stats().term_queries, disk_before + 2);
  EXPECT_LE(store_.disk()->stats().term_queries, disk_before + 3);
  EXPECT_EQ(engine_.metrics().disk_term_reads,
            store_.disk()->stats().term_queries - disk_before);
}

TEST_F(QueryEngineTest, SearchKeywordsConvenience) {
  ASSERT_TRUE(store_.InsertText("#breaking news", 1, 0).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store_.InsertText("#breaking again", 1, 0).ok());
  }
  auto result = engine_.SearchKeywords({"breaking"}, QueryType::kSingle);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->memory_hit);
  EXPECT_EQ(result->results.size(), kK);
}

TEST_F(QueryEngineTest, QueryUsesStoreDefaultK) {
  for (MicroblogId id = 1; id <= 10; ++id) Ingest(id, id, {1});
  auto result = engine_.Execute(Single(1));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->results.size(), static_cast<size_t>(store_.k()));
}

}  // namespace
}  // namespace kflush
