#include "core/multi_store.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

MultiStoreOptions SmallMultiOptions() {
  MultiStoreOptions options;
  options.total_memory_budget_bytes = 3 << 20;
  options.k = 5;
  options.policy = PolicyKind::kKFlushing;
  return options;
}

TEST(MultiAttributeStoreTest, InsertFansOutToAllAttributes) {
  MultiAttributeStore store(SmallMultiOptions());
  GeoPoint loc{44.97, -93.26};
  ASSERT_TRUE(store.InsertText("hello #nba fans", 42, 10, &loc).ok());
  EXPECT_EQ(store.keyword_store()->ingest_stats().inserted, 1u);
  EXPECT_EQ(store.spatial_store()->ingest_stats().inserted, 1u);
  EXPECT_EQ(store.user_store()->ingest_stats().inserted, 1u);
}

TEST(MultiAttributeStoreTest, SharedIdsAcrossStores) {
  MultiAttributeStore store(SmallMultiOptions());
  GeoPoint loc{44.97, -93.26};
  ASSERT_TRUE(store.InsertText("#one", 1, 0, &loc).ok());
  ASSERT_TRUE(store.InsertText("#two", 2, 0, &loc).ok());
  auto kw = store.SearchKeywords({"two"}, QueryType::kSingle);
  ASSERT_TRUE(kw.ok());
  ASSERT_EQ(kw->results.size(), 1u);
  const MicroblogId id = kw->results[0].id;
  auto user = store.SearchUser(2);
  ASSERT_TRUE(user.ok());
  ASSERT_EQ(user->results.size(), 1u);
  EXPECT_EQ(user->results[0].id, id);  // same record id in both indexes
}

TEST(MultiAttributeStoreTest, NoLocationSkipsSpatialOnly) {
  MultiAttributeStore store(SmallMultiOptions());
  ASSERT_TRUE(store.InsertText("#tag only", 7, 0, nullptr).ok());
  EXPECT_EQ(store.keyword_store()->ingest_stats().inserted, 1u);
  EXPECT_EQ(store.spatial_store()->ingest_stats().skipped_no_terms, 1u);
  EXPECT_EQ(store.user_store()->ingest_stats().inserted, 1u);
}

TEST(MultiAttributeStoreTest, AllThreeQueryPathsAnswer) {
  MultiAttributeStore store(SmallMultiOptions());
  GeoPoint loc{40.0, -90.0};
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.InsertText("game night #nba", 5, 0, &loc).ok());
  }
  auto kw = store.SearchKeywords({"nba"}, QueryType::kSingle);
  ASSERT_TRUE(kw.ok());
  EXPECT_TRUE(kw->memory_hit);
  EXPECT_EQ(kw->results.size(), 5u);

  auto spatial = store.SearchLocation(40.0, -90.0);
  ASSERT_TRUE(spatial.ok());
  EXPECT_TRUE(spatial->memory_hit);

  auto area = store.SearchArea(39.9, -90.1, 40.1, -89.9);
  ASSERT_TRUE(area.ok());
  EXPECT_EQ(area->results.size(), 5u);

  auto user = store.SearchUser(5);
  ASSERT_TRUE(user.ok());
  EXPECT_TRUE(user->memory_hit);
}

TEST(MultiAttributeStoreTest, BudgetsSplitAndEnforced) {
  MultiStoreOptions options = SmallMultiOptions();
  MultiAttributeStore store(options);
  EXPECT_EQ(store.keyword_store()->options().memory_budget_bytes,
            options.total_memory_budget_bytes / 2);
  EXPECT_EQ(store.spatial_store()->options().memory_budget_bytes,
            options.total_memory_budget_bytes / 4);

  // Stream enough to overflow every slice; each store must flush and stay
  // near its own budget.
  TweetGeneratorOptions stream;
  stream.seed = 3;
  stream.vocabulary_size = 10'000;
  TweetGenerator gen(stream);
  for (int i = 0; i < 40'000; ++i) {
    ASSERT_TRUE(store.Insert(gen.Next()).ok());
  }
  EXPECT_GT(store.keyword_store()->ingest_stats().flush_triggers, 0u);
  EXPECT_GT(store.spatial_store()->ingest_stats().flush_triggers, 0u);
  EXPECT_GT(store.user_store()->ingest_stats().flush_triggers, 0u);
  EXPECT_LT(store.DataUsed(), options.total_memory_budget_bytes * 2);
}

TEST(MultiAttributeStoreTest, EnginesKeepSeparateMetrics) {
  MultiAttributeStore store(SmallMultiOptions());
  GeoPoint loc{40.0, -90.0};
  ASSERT_TRUE(store.InsertText("#x", 1, 0, &loc).ok());
  ASSERT_TRUE(store.SearchKeywords({"x"}, QueryType::kSingle).ok());
  ASSERT_TRUE(store.SearchUser(1).ok());
  EXPECT_EQ(store.keyword_engine()->metrics().queries, 1u);
  EXPECT_EQ(store.user_engine()->metrics().queries, 1u);
  EXPECT_EQ(store.spatial_engine()->metrics().queries, 0u);
}

}  // namespace
}  // namespace kflush
