#include "core/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(QueryMetricsTest, EmptySnapshot) {
  QueryMetrics metrics;
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_DOUBLE_EQ(snap.HitRatio(), 0.0);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kAnd), 0.0);
}

TEST(QueryMetricsTest, RecordsByType) {
  QueryMetrics metrics;
  metrics.Record(QueryType::kSingle, true, 0, 10);
  metrics.Record(QueryType::kSingle, false, 1, 20);
  metrics.Record(QueryType::kAnd, true, 0, 30);
  metrics.Record(QueryType::kOr, false, 2, 40);
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.queries, 4u);
  EXPECT_EQ(snap.memory_hits, 2u);
  EXPECT_EQ(snap.memory_misses, 2u);
  EXPECT_EQ(snap.disk_term_reads, 3u);
  EXPECT_DOUBLE_EQ(snap.HitRatio(), 0.5);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kSingle), 0.5);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kAnd), 1.0);
  EXPECT_DOUBLE_EQ(snap.HitRatioFor(QueryType::kOr), 0.0);
  EXPECT_EQ(snap.latency_micros.count(), 4u);
}

TEST(QueryMetricsTest, ResetClears) {
  QueryMetrics metrics;
  metrics.Record(QueryType::kSingle, true, 0, 10);
  metrics.Reset();
  EXPECT_EQ(metrics.Snapshot().queries, 0u);
}

TEST(QueryMetricsTest, ConcurrentRecording) {
  QueryMetrics metrics;
  constexpr int kThreads = 8;
  constexpr int kEach = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&metrics] {
      for (int i = 0; i < kEach; ++i) {
        metrics.Record(QueryType::kSingle, i % 2 == 0, 0, 1);
      }
    });
  }
  for (auto& th : threads) th.join();
  auto snap = metrics.Snapshot();
  EXPECT_EQ(snap.queries, static_cast<uint64_t>(kThreads) * kEach);
  EXPECT_EQ(snap.memory_hits, snap.memory_misses);
}

TEST(QueryMetricsTest, ToStringHasRates) {
  QueryMetrics metrics;
  metrics.Record(QueryType::kSingle, true, 0, 10);
  const std::string s = metrics.Snapshot().ToString();
  EXPECT_NE(s.find("queries=1"), std::string::npos);
  EXPECT_NE(s.find("hit_ratio="), std::string::npos);
}

TEST(QueryTypeNameTest, Names) {
  EXPECT_STREQ(QueryTypeName(QueryType::kSingle), "single");
  EXPECT_STREQ(QueryTypeName(QueryType::kAnd), "AND");
  EXPECT_STREQ(QueryTypeName(QueryType::kOr), "OR");
}

}  // namespace
}  // namespace kflush
