#include "core/store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

TEST(MicroblogStoreTest, InsertAssignsIdsAndTimestamps) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  Microblog blog;
  blog.keywords = {1};
  ASSERT_TRUE(store.Insert(blog).ok());
  ASSERT_TRUE(store.Insert(blog).ok());
  EXPECT_EQ(store.ingest_stats().inserted, 2u);
  EXPECT_EQ(store.raw_store()->size(), 2u);
  // Ids are monotone from 1.
  EXPECT_TRUE(store.raw_store()->Contains(1));
  EXPECT_TRUE(store.raw_store()->Contains(2));
}

TEST(MicroblogStoreTest, ExplicitIdsRespected) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  ASSERT_TRUE(store.Insert(MakeBlog(777, 10, {1})).ok());
  EXPECT_TRUE(store.raw_store()->Contains(777));
}

TEST(MicroblogStoreTest, NoTermsArrivalsAreSkipped) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  Microblog blog;  // no keywords
  ASSERT_TRUE(store.Insert(blog).ok());
  EXPECT_EQ(store.ingest_stats().inserted, 0u);
  EXPECT_EQ(store.ingest_stats().skipped_no_terms, 1u);
  EXPECT_EQ(store.raw_store()->size(), 0u);
}

TEST(MicroblogStoreTest, PcountMatchesTermCount) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  ASSERT_TRUE(store.Insert(MakeBlog(1, 10, {1, 2, 3})).ok());
  EXPECT_EQ(store.raw_store()->Pcount(1), 3u);
}

TEST(MicroblogStoreTest, InsertTextTokenizesAndInterns) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  ASSERT_TRUE(store.InsertText("big news #obama #rally", 5, 100).ok());
  EXPECT_EQ(store.dictionary()->size(), 2u);
  EXPECT_NE(store.TermForKeyword("obama"), kInvalidTermId);
  EXPECT_EQ(store.TermForKeyword("never-seen"), kInvalidTermId);
  EXPECT_EQ(store.raw_store()->size(), 1u);
}

TEST(MicroblogStoreTest, AutoFlushTriggersWhenFull) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing,
                                        /*budget=*/32 * 1024);
  opts.auto_flush = true;
  MicroblogStore store(opts);
  // Pour in data well beyond the budget; auto-flush must bound memory.
  testing_util::FillRoundRobin(&store, 1000, 20);
  EXPECT_GT(store.ingest_stats().flush_triggers, 0u);
  EXPECT_LT(store.tracker().DataUsed(), 2 * opts.memory_budget_bytes);
  EXPECT_GT(store.disk()->NumRecords(), 0u);
}

TEST(MicroblogStoreTest, ManualFlushFreesBudgetFraction) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kFifo, 64 * 1024);
  MicroblogStore store(opts);
  testing_util::FillRoundRobin(&store, 400, 20);
  const size_t used_before = store.tracker().DataUsed();
  const size_t freed = store.FlushOnce();
  EXPECT_GE(freed, store.FlushBudgetBytes());
  EXPECT_LT(store.tracker().DataUsed(), used_before);
}

TEST(MicroblogStoreTest, SetKForwardsToPolicy) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  EXPECT_EQ(store.k(), 5u);
  store.SetK(9);
  EXPECT_EQ(store.k(), 9u);
  EXPECT_EQ(store.policy()->k(), 9u);
}

TEST(MicroblogStoreTest, SpatialAttributeIndexesTiles) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  Microblog blog;
  blog.has_location = true;
  blog.location = {44.97, -93.26};
  ASSERT_TRUE(store.Insert(blog).ok());
  const TermId tile = store.TermForLocation(44.97, -93.26);
  ASSERT_NE(tile, kInvalidTermId);
  EXPECT_EQ(store.policy()->EntrySize(tile), 1u);
  // Non-geotagged arrivals are skipped under the spatial attribute.
  Microblog no_loc;
  no_loc.keywords = {1};
  ASSERT_TRUE(store.Insert(no_loc).ok());
  EXPECT_EQ(store.ingest_stats().skipped_no_terms, 1u);
}

TEST(MicroblogStoreTest, UserAttributeIndexesAuthors) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  opts.attribute = AttributeKind::kUser;
  MicroblogStore store(opts);
  for (int i = 0; i < 3; ++i) {
    Microblog blog;
    blog.user_id = 42;
    ASSERT_TRUE(store.Insert(blog).ok());
  }
  EXPECT_EQ(store.policy()->EntrySize(store.TermForUser(42)), 3u);
}

TEST(MicroblogStoreTest, TermForLocationRequiresSpatialAttribute) {
  MicroblogStore store(SmallStoreOptions(PolicyKind::kKFlushing));
  EXPECT_EQ(store.TermForLocation(1.0, 2.0), kInvalidTermId);
}

TEST(MicroblogStoreTest, PopularityRankingOrdersByScore) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  opts.ranking = RankingKind::kPopularity;
  MicroblogStore store(opts);
  // Older celebrity post vs. slightly newer nobody post.
  Microblog celebrity = MakeBlog(1, 1000, {7});
  celebrity.follower_count = 1'000'000;
  Microblog nobody = MakeBlog(2, 2000, {7});
  nobody.follower_count = 0;
  ASSERT_TRUE(store.Insert(celebrity).ok());
  ASSERT_TRUE(store.Insert(nobody).ok());
  std::vector<MicroblogId> ids;
  store.policy()->QueryTerm(7, 2, &ids, false);
  EXPECT_EQ(ids, (std::vector<MicroblogId>{1, 2}));  // celebrity first
}

TEST(MicroblogStoreTest, ExternalClockUsed) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing);
  SimClock clock(5000);
  opts.clock = &clock;
  MicroblogStore store(opts);
  Microblog blog;
  blog.keywords = {1};
  ASSERT_TRUE(store.Insert(blog).ok());
  EXPECT_EQ(store.raw_store()->Get(1)->created_at, 5000u);
}

TEST(MicroblogStoreTest, ConcurrentFlushOnceCoalesces) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kFifo, 64 * 1024);
  MicroblogStore store(opts);
  testing_util::FillRoundRobin(&store, 200, 10);
  std::atomic<size_t> total_freed{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back(
        [&] { total_freed.fetch_add(store.FlushOnce()); });
  }
  for (auto& t : threads) t.join();
  // At least one thread flushed; extra concurrent triggers coalesced.
  EXPECT_GT(total_freed.load(), 0u);
}

}  // namespace
}  // namespace kflush
