#include "gen/trace.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "../testing/test_util.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kflush_trace_test.trace";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(TraceTest, SaveLoadRoundTrip) {
  std::vector<Microblog> blogs;
  for (MicroblogId id = 1; id <= 100; ++id) {
    blogs.push_back(MakeBlog(id, id * 10, {static_cast<KeywordId>(id % 7)},
                             id % 5, "trace record " + std::to_string(id)));
  }
  ASSERT_TRUE(SaveTrace(path_, blogs).ok());
  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), blogs.size());
  for (size_t i = 0; i < blogs.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id, blogs[i].id);
    EXPECT_EQ((*loaded)[i].text, blogs[i].text);
    EXPECT_EQ((*loaded)[i].keywords, blogs[i].keywords);
  }
}

TEST_F(TraceTest, EmptyTrace) {
  ASSERT_TRUE(SaveTrace(path_, {}).ok());
  auto loaded = LoadTrace(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST_F(TraceTest, StreamingWriterReader) {
  auto writer = TraceWriter::Open(path_);
  ASSERT_TRUE(writer.ok());
  TweetGeneratorOptions opts;
  opts.seed = 55;
  TweetGenerator gen(opts);
  std::vector<Microblog> originals;
  for (int i = 0; i < 5000; ++i) {
    Microblog blog = gen.Next();
    blog.id = static_cast<MicroblogId>(i + 1);
    ASSERT_TRUE((*writer)->Append(blog).ok());
    originals.push_back(std::move(blog));
  }
  ASSERT_TRUE((*writer)->Flush().ok());
  EXPECT_EQ((*writer)->written(), 5000u);
  writer->reset();

  auto reader = TraceReader::Open(path_);
  ASSERT_TRUE(reader.ok());
  Microblog blog;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE((*reader)->Next(&blog).ok()) << i;
    ASSERT_EQ(blog.id, originals[i].id);
    ASSERT_EQ(blog.created_at, originals[i].created_at);
    ASSERT_EQ(blog.keywords, originals[i].keywords);
  }
  EXPECT_TRUE((*reader)->Next(&blog).IsNotFound());
  EXPECT_TRUE((*reader)->Next(&blog).IsNotFound());  // stable at EOF
}

TEST_F(TraceTest, RejectsNonTraceFile) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("this is not a trace file at all", f);
  std::fclose(f);
  auto reader = TraceReader::Open(path_);
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsCorruption());
}

TEST_F(TraceTest, OpenMissingFileFails) {
  auto reader = TraceReader::Open("/nonexistent/path.trace");
  EXPECT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsIOError());
}

}  // namespace
}  // namespace kflush
