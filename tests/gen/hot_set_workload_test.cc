#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/query_generator.h"

namespace kflush {
namespace {

QueryWorkloadOptions HotOpts(double p, uint64_t size, uint64_t rotation) {
  QueryWorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;  // background stays uniform
  opts.attribute = AttributeKind::kKeyword;
  opts.seed = 21;
  opts.single_fraction = 1.0;  // single-term queries for clean statistics
  opts.and_fraction = 0.0;
  opts.hot_set_p = p;
  opts.hot_set_size = size;
  opts.hot_rotation_queries = rotation;
  return opts;
}

TEST(HotSetWorkloadTest, DisabledByDefault) {
  TweetGeneratorOptions stream;
  stream.vocabulary_size = 1'000;
  QueryWorkloadOptions opts;
  opts.kind = WorkloadKind::kUniform;
  opts.seed = 5;
  QueryGenerator gen(opts, stream);
  // With no hot set, terms spread over most of the vocabulary.
  std::set<TermId> seen;
  for (int i = 0; i < 5'000; ++i) seen.insert(gen.Next().terms[0]);
  EXPECT_GT(seen.size(), 500u);
}

TEST(HotSetWorkloadTest, ConcentratesOnHotWindow) {
  TweetGeneratorOptions stream;
  stream.vocabulary_size = 100'000;
  QueryGenerator gen(HotOpts(0.8, 100, 1'000'000), stream);
  std::map<TermId, int> counts;
  constexpr int kN = 10'000;
  for (int i = 0; i < kN; ++i) counts[gen.Next().terms[0]]++;
  // ~80% of queries land in a 100-term window (no rotation within run).
  int in_window = 0;
  for (const auto& [term, count] : counts) {
    if (term < 100) in_window += count;
  }
  EXPECT_NEAR(static_cast<double>(in_window) / kN, 0.8, 0.03);
}

TEST(HotSetWorkloadTest, HotSetRotates) {
  TweetGeneratorOptions stream;
  stream.vocabulary_size = 100'000;
  QueryGenerator gen(HotOpts(1.0, 100, 1'000), stream);
  std::set<TermId> first_phase, later_phase;
  for (int i = 0; i < 900; ++i) first_phase.insert(gen.Next().terms[0]);
  // Skip ahead several rotations.
  for (int i = 0; i < 4'000; ++i) gen.Next();
  for (int i = 0; i < 900; ++i) later_phase.insert(gen.Next().terms[0]);
  // The windows drift: late-phase terms are mostly outside the first
  // window.
  int overlap = 0;
  for (TermId t : later_phase) {
    if (first_phase.count(t) > 0) ++overlap;
  }
  EXPECT_LT(overlap, static_cast<int>(later_phase.size()) / 2);
}

TEST(HotSetWorkloadTest, IgnoredWhenHotSetSpansVocabulary) {
  TweetGeneratorOptions stream;
  stream.vocabulary_size = 50;
  QueryGenerator gen(HotOpts(1.0, 50, 1'000), stream);
  // hot_set_size == vocabulary: falls back to the base distribution
  // rather than dividing by zero.
  for (int i = 0; i < 1'000; ++i) {
    EXPECT_LT(gen.Next().terms[0], 50u);
  }
}

}  // namespace
}  // namespace kflush
