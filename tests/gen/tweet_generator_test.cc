#include "gen/tweet_generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace kflush {
namespace {

TEST(TweetGeneratorTest, DeterministicForSeed) {
  TweetGeneratorOptions opts;
  opts.seed = 11;
  TweetGenerator a(opts), b(opts);
  for (int i = 0; i < 500; ++i) {
    Microblog ba = a.Next(), bb = b.Next();
    EXPECT_EQ(ba.created_at, bb.created_at);
    EXPECT_EQ(ba.user_id, bb.user_id);
    EXPECT_EQ(ba.keywords, bb.keywords);
    EXPECT_EQ(ba.text, bb.text);
    if (ba.has_location) {
      EXPECT_DOUBLE_EQ(ba.location.lat, bb.location.lat);
    }
  }
}

TEST(TweetGeneratorTest, TimestampsStrictlyIncrease) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  Timestamp prev = 0;
  for (int i = 0; i < 1000; ++i) {
    Microblog blog = gen.Next();
    EXPECT_GT(blog.created_at, prev);
    prev = blog.created_at;
  }
}

TEST(TweetGeneratorTest, ArrivalRateMatchesInterval) {
  TweetGeneratorOptions opts;
  opts.arrival_interval_micros = 166;
  opts.start_time = 1000;
  TweetGenerator gen(opts);
  Microblog first = gen.Next();
  EXPECT_EQ(first.created_at, 1000u);
  for (int i = 0; i < 99; ++i) gen.Next();
  Microblog hundredth = gen.Next();
  EXPECT_EQ(hundredth.created_at, 1000u + 100 * 166);
}

TEST(TweetGeneratorTest, KeywordsAreDistinctAndBounded) {
  TweetGeneratorOptions opts;
  opts.max_keywords = 4;
  TweetGenerator gen(opts);
  for (int i = 0; i < 2000; ++i) {
    Microblog blog = gen.Next();
    ASSERT_GE(blog.keywords.size(), 1u);
    ASSERT_LE(blog.keywords.size(), 4u);
    std::set<KeywordId> distinct(blog.keywords.begin(), blog.keywords.end());
    EXPECT_EQ(distinct.size(), blog.keywords.size());
    for (KeywordId kw : blog.keywords) {
      EXPECT_LT(kw, opts.vocabulary_size);
    }
  }
}

TEST(TweetGeneratorTest, KeywordFrequencyIsSkewed) {
  TweetGeneratorOptions opts;
  opts.seed = 5;
  TweetGenerator gen(opts);
  std::map<KeywordId, int> counts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    for (KeywordId kw : gen.Next().keywords) counts[kw]++;
  }
  // Rank 0 dominates and the tail is long — the Figure 1 shape.
  int head = 0;
  for (KeywordId kw = 0; kw < 10; ++kw) head += counts[kw];
  EXPECT_GT(head, kN / 10);            // top-10 keywords > 10% of mass
  EXPECT_GT(counts.size(), 5000u);     // long tail of distinct keywords
  EXPECT_GT(counts[0], counts[50]);    // monotone-ish head
}

TEST(TweetGeneratorTest, LocationsWithinRegionMostly) {
  TweetGeneratorOptions opts;
  opts.seed = 9;
  TweetGenerator gen(opts);
  int inside = 0;
  constexpr int kN = 5000;
  for (int i = 0; i < kN; ++i) {
    Microblog blog = gen.Next();
    ASSERT_TRUE(blog.has_location);
    if (opts.region.Contains(blog.location)) ++inside;
  }
  // Hotspot Gaussians can spill slightly past the region edge.
  EXPECT_GT(inside, kN * 95 / 100);
}

TEST(TweetGeneratorTest, GeotaggedFractionRespected) {
  TweetGeneratorOptions opts;
  opts.geotagged_fraction = 0.25;
  opts.seed = 13;
  TweetGenerator gen(opts);
  int geo = 0;
  constexpr int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (gen.Next().has_location) ++geo;
  }
  EXPECT_NEAR(static_cast<double>(geo) / kN, 0.25, 0.02);
}

TEST(TweetGeneratorTest, UserActivityIsSkewed) {
  TweetGeneratorOptions opts;
  opts.seed = 17;
  TweetGenerator gen(opts);
  std::map<UserId, int> posts;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) posts[gen.Next().user_id]++;
  // Most active user posts far more than the median user.
  int max_posts = 0;
  for (const auto& [user, count] : posts) max_posts = std::max(max_posts, count);
  EXPECT_GT(max_posts, 50);
  EXPECT_GT(posts.size(), 5000u);
}

TEST(TweetGeneratorTest, TextContainsHashtags) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  Microblog blog = gen.Next();
  ASSERT_FALSE(blog.text.empty());
  EXPECT_NE(blog.text.find("#tag"), std::string::npos);
  EXPECT_GE(blog.text.size(), 100u);  // realistic record footprint
}

TEST(TweetGeneratorTest, TextGenerationCanBeDisabled) {
  TweetGeneratorOptions opts;
  opts.generate_text = false;
  TweetGenerator gen(opts);
  EXPECT_TRUE(gen.Next().text.empty());
}

TEST(TweetGeneratorTest, HotspotsDeterministicFromOptions) {
  TweetGeneratorOptions opts;
  opts.seed = 21;
  auto a = MakeHotspots(opts);
  auto b = MakeHotspots(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].lat, b[i].lat);
    EXPECT_DOUBLE_EQ(a[i].lon, b[i].lon);
  }
  // Different seed, different hotspots.
  opts.seed = 22;
  auto c = MakeHotspots(opts);
  EXPECT_NE(a[0].lat, c[0].lat);
}

TEST(TweetGeneratorTest, FillBatchAppends) {
  TweetGeneratorOptions opts;
  TweetGenerator gen(opts);
  std::vector<Microblog> batch;
  gen.FillBatch(10, &batch);
  gen.FillBatch(5, &batch);
  EXPECT_EQ(batch.size(), 15u);
  EXPECT_EQ(gen.generated(), 15u);
}

}  // namespace
}  // namespace kflush
