#include "gen/query_generator.h"

#include <gtest/gtest.h>

#include <map>

namespace kflush {
namespace {

QueryWorkloadOptions Opts(WorkloadKind kind, AttributeKind attr) {
  QueryWorkloadOptions opts;
  opts.kind = kind;
  opts.attribute = attr;
  opts.seed = 33;
  return opts;
}

TEST(QueryGeneratorTest, DeterministicForSeed) {
  TweetGeneratorOptions stream;
  QueryGenerator a(Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword),
                   stream);
  QueryGenerator b(Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword),
                   stream);
  for (int i = 0; i < 500; ++i) {
    TopKQuery qa = a.Next(), qb = b.Next();
    EXPECT_EQ(qa.type, qb.type);
    EXPECT_EQ(qa.terms, qb.terms);
  }
}

TEST(QueryGeneratorTest, KeywordMixIsOneThirdEach) {
  TweetGeneratorOptions stream;
  QueryGenerator gen(Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword),
                     stream);
  std::map<QueryType, int> counts;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) counts[gen.Next().type]++;
  for (QueryType type :
       {QueryType::kSingle, QueryType::kAnd, QueryType::kOr}) {
    EXPECT_NEAR(static_cast<double>(counts[type]) / kN, 1.0 / 3.0, 0.02)
        << QueryTypeName(type);
  }
}

TEST(QueryGeneratorTest, MultiTermQueriesHaveTwoDistinctTerms) {
  TweetGeneratorOptions stream;
  QueryGenerator gen(Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword),
                     stream);
  for (int i = 0; i < 5000; ++i) {
    TopKQuery q = gen.Next();
    if (q.type == QueryType::kSingle) {
      EXPECT_EQ(q.terms.size(), 1u);
    } else {
      ASSERT_EQ(q.terms.size(), 2u);
      EXPECT_NE(q.terms[0], q.terms[1]);
    }
  }
}

TEST(QueryGeneratorTest, CorrelatedKeywordLoadIsSkewed) {
  TweetGeneratorOptions stream;
  QueryGenerator gen(Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword),
                     stream);
  std::map<TermId, int> counts;
  constexpr int kN = 30000;
  for (int i = 0; i < kN; ++i) counts[gen.Next().terms[0]]++;
  // Rank-0 keyword queried far more often than uniform would predict.
  EXPECT_GT(counts[0], static_cast<int>(5 * kN / stream.vocabulary_size));
}

TEST(QueryGeneratorTest, UniformKeywordLoadIsFlat) {
  TweetGeneratorOptions stream;
  stream.vocabulary_size = 100;  // small vocab for tight statistics
  QueryGenerator gen(Opts(WorkloadKind::kUniform, AttributeKind::kKeyword),
                     stream);
  std::map<TermId, int> counts;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[gen.Next().terms[0]]++;
  for (const auto& [term, count] : counts) {
    EXPECT_NEAR(count, kN / 100, kN / 100 * 0.25) << "term " << term;
  }
}

TEST(QueryGeneratorTest, UserQueriesAreSingleOnly) {
  TweetGeneratorOptions stream;
  QueryGenerator gen(Opts(WorkloadKind::kCorrelated, AttributeKind::kUser),
                     stream);
  for (int i = 0; i < 2000; ++i) {
    TopKQuery q = gen.Next();
    EXPECT_EQ(q.type, QueryType::kSingle);
    EXPECT_EQ(q.terms.size(), 1u);
    EXPECT_GE(q.terms[0], 1u);  // user ids are 1-based
    EXPECT_LE(q.terms[0], stream.num_users);
  }
}

TEST(QueryGeneratorTest, SpatialQueriesHaveNoAnd) {
  TweetGeneratorOptions stream;
  QueryGenerator gen(Opts(WorkloadKind::kCorrelated, AttributeKind::kSpatial),
                     stream);
  std::map<QueryType, int> counts;
  for (int i = 0; i < 10000; ++i) counts[gen.Next().type]++;
  EXPECT_EQ(counts[QueryType::kAnd], 0);
  EXPECT_GT(counts[QueryType::kSingle], 0);
  EXPECT_GT(counts[QueryType::kOr], 0);
}

TEST(QueryGeneratorTest, CorrelatedSpatialTargetsHotspotTiles) {
  // Correlated spatial queries should concentrate on few tiles (hotspots);
  // uniform queries spread over many more tiles.
  TweetGeneratorOptions stream;
  stream.seed = 3;
  QueryGenerator corr(Opts(WorkloadKind::kCorrelated, AttributeKind::kSpatial),
                      stream);
  QueryGenerator unif(Opts(WorkloadKind::kUniform, AttributeKind::kSpatial),
                      stream);
  std::map<TermId, int> corr_tiles, unif_tiles;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    corr_tiles[corr.Next().terms[0]]++;
    unif_tiles[unif.Next().terms[0]]++;
  }
  EXPECT_LT(corr_tiles.size(), unif_tiles.size() / 2);
}

TEST(QueryGeneratorTest, KCarriedOnQueries) {
  TweetGeneratorOptions stream;
  QueryWorkloadOptions opts =
      Opts(WorkloadKind::kCorrelated, AttributeKind::kKeyword);
  opts.k = 42;
  QueryGenerator gen(opts, stream);
  EXPECT_EQ(gen.Next().k, 42u);
}

}  // namespace
}  // namespace kflush
