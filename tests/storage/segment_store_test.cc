// SegmentDiskStore: sealed-segment write/read round trips, catalog and
// term-index rebuild on OpenOrRecover, torn-segment salvage + reseal,
// headerless-file removal, and sequence resumption after restart.

#include "storage/segment.h"

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>

#include "../testing/test_util.h"
#include "model/attribute.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::RecordsEqual;
using testing_util::RemoveTree;

double ScoreByCreatedAt(const Microblog& blog) {
  return static_cast<double>(blog.created_at);
}

class SegmentStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/kflush_segment_test";
    RemoveTree(dir_);
  }
  void TearDown() override { RemoveTree(dir_); }

  std::unique_ptr<SegmentDiskStore> OpenFresh(
      const AttributeExtractor* extractor = nullptr) {
    auto opened = SegmentDiskStore::OpenOrRecover(
        dir_, DurabilityLevel::kBatch, extractor,
        extractor != nullptr
            ? std::function<double(const Microblog&)>(ScoreByCreatedAt)
            : nullptr);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok() ? std::move(opened).value() : nullptr;
  }

  long FileSize(const std::string& path) {
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size)
                                          : -1;
  }

  std::string dir_;
};

TEST_F(SegmentStoreTest, FreshDirectoryOpensEmpty) {
  auto store = OpenFresh();
  ASSERT_NE(store, nullptr);
  EXPECT_EQ(store->NumRecords(), 0u);
  EXPECT_EQ(store->NumSegments(), 0u);
  EXPECT_EQ(store->MaxRecordId(), 0u);
}

TEST_F(SegmentStoreTest, WriteBatchSealsOneSegmentPerBatch) {
  auto store = OpenFresh();
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store
                  ->WriteBatch({MakeBlog(1, 10, {1}, 7, "alpha"),
                                MakeBlog(2, 20, {2}, 8, "beta")})
                  .ok());
  ASSERT_TRUE(store->WriteBatch({MakeBlog(3, 30, {1}, 9, "gamma")}).ok());
  EXPECT_EQ(store->NumSegments(), 2u);
  EXPECT_EQ(store->NumRecords(), 3u);
  EXPECT_EQ(store->MaxRecordId(), 3u);
  const DiskStats stats = store->stats();
  EXPECT_EQ(stats.records_written, 3u);
  EXPECT_EQ(stats.write_batches, 2u);
  EXPECT_EQ(stats.fsyncs, 2u);  // one per sealed segment at kBatch

  Microblog blog;
  ASSERT_TRUE(store->GetRecord(2, &blog).ok());
  EXPECT_TRUE(RecordsEqual(blog, MakeBlog(2, 20, {2}, 8, "beta")));
  EXPECT_TRUE(store->Contains(3));
  EXPECT_FALSE(store->Contains(99));
  EXPECT_TRUE(store->GetRecord(99, &blog).IsNotFound());
}

TEST_F(SegmentStoreTest, RecoveryRebuildsCatalogAndTermIndex) {
  {
    auto store = OpenFresh();
    ASSERT_NE(store, nullptr);
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 10; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {5}, id,
                               "segment record " + std::to_string(id)));
    }
    ASSERT_TRUE(store->WriteBatch(std::move(batch)).ok());
    ASSERT_TRUE(store->WriteBatch({MakeBlog(11, 500, {9})}).ok());
  }

  KeywordAttribute extractor;
  auto reopened = OpenFresh(&extractor);
  ASSERT_NE(reopened, nullptr);
  EXPECT_EQ(reopened->NumRecords(), 11u);
  EXPECT_EQ(reopened->NumSegments(), 2u);
  EXPECT_EQ(reopened->MaxRecordId(), 11u);
  const DiskStats stats = reopened->stats();
  EXPECT_EQ(stats.records_recovered, 11u);
  EXPECT_EQ(stats.records_written, 0u);  // recovery is not a write
  EXPECT_EQ(stats.torn_bytes_truncated, 0u);

  std::vector<Posting> postings;
  ASSERT_TRUE(reopened->QueryTerm(5, 100, &postings).ok());
  ASSERT_EQ(postings.size(), 10u);
  EXPECT_EQ(postings[0].id, 10u);  // best score (most recent) first
  double max_score = 0;
  ASSERT_TRUE(reopened->MaxTermScore(5, &max_score));
  EXPECT_EQ(max_score, 100.0);
  EXPECT_FALSE(reopened->MaxTermScore(12345, &max_score));

  Microblog blog;
  ASSERT_TRUE(reopened->GetRecord(7, &blog).ok());
  EXPECT_EQ(blog.text, "segment record 7");
}

TEST_F(SegmentStoreTest, TornSegmentIsSalvagedAndResealed) {
  {
    auto store = OpenFresh();
    ASSERT_NE(store, nullptr);
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 5; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {1}, id,
                               "salvage record " + std::to_string(id)));
    }
    ASSERT_TRUE(store->WriteBatch(std::move(batch)).ok());
  }
  const std::string seg_path = dir_ + "/seg-000001.kseg";
  const long sealed_size = FileSize(seg_path);
  ASSERT_GT(sealed_size, 0);
  // Cut off the footer and bite into the final record frame: the shape a
  // crash between the body flush and the seal leaves behind.
  ASSERT_EQ(::truncate(seg_path.c_str(), sealed_size - 30), 0);

  auto recovered = OpenFresh();
  ASSERT_NE(recovered, nullptr);
  EXPECT_LT(recovered->NumRecords(), 5u);
  EXPECT_GE(recovered->NumRecords(), 1u);
  EXPECT_GT(recovered->stats().torn_bytes_truncated, 0u);
  const size_t salvaged = recovered->NumRecords();
  Microblog blog;
  for (MicroblogId id = 1; id <= salvaged; ++id) {
    ASSERT_TRUE(recovered->GetRecord(id, &blog).ok()) << "id " << id;
    EXPECT_EQ(blog.text, "salvage record " + std::to_string(id));
  }
  recovered.reset();

  // The reseal is durable: a second recovery sees a clean, sealed
  // segment with the same salvaged records and nothing torn.
  auto again = OpenFresh();
  ASSERT_NE(again, nullptr);
  EXPECT_EQ(again->NumRecords(), salvaged);
  EXPECT_EQ(again->stats().torn_bytes_truncated, 0u);
}

TEST_F(SegmentStoreTest, HeaderlessSegmentFileIsRemoved) {
  {
    auto store = OpenFresh();
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  }
  // A crash during segment creation can leave a file shorter than the
  // header (or with a foreign magic): nothing in it is salvageable.
  const std::string stub_path = dir_ + "/seg-000002.kseg";
  std::FILE* f = std::fopen(stub_path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("JUNK", f);
  std::fclose(f);

  auto recovered = OpenFresh();
  ASSERT_NE(recovered, nullptr);
  EXPECT_EQ(recovered->NumRecords(), 1u);
  EXPECT_EQ(recovered->NumSegments(), 1u);
  EXPECT_EQ(recovered->stats().torn_bytes_truncated, 4u);
  struct stat st;
  EXPECT_NE(::stat(stub_path.c_str(), &st), 0);  // stub deleted
}

TEST_F(SegmentStoreTest, SequenceResumesPastRecoveredSegments) {
  {
    auto store = OpenFresh();
    ASSERT_NE(store, nullptr);
    ASSERT_TRUE(store->WriteBatch({MakeBlog(1, 10, {1})}).ok());
    ASSERT_TRUE(store->WriteBatch({MakeBlog(2, 20, {1})}).ok());
  }
  auto recovered = OpenFresh();
  ASSERT_NE(recovered, nullptr);
  ASSERT_TRUE(recovered->WriteBatch({MakeBlog(3, 30, {1})}).ok());
  EXPECT_EQ(recovered->NumSegments(), 3u);
  // The new batch landed in seg-000003, not on top of a recovered one.
  EXPECT_GT(FileSize(dir_ + "/seg-000003.kseg"), 0);
  recovered.reset();

  auto final_check = OpenFresh();
  ASSERT_NE(final_check, nullptr);
  EXPECT_EQ(final_check->NumRecords(), 3u);
  EXPECT_EQ(final_check->MaxRecordId(), 3u);
}

TEST_F(SegmentStoreTest, PostingsOrderAndDuplicatesMatchDiskContract) {
  auto store = OpenFresh();
  ASSERT_NE(store, nullptr);
  ASSERT_TRUE(store->AddPosting(1, 10, 5.0).ok());
  ASSERT_TRUE(store->AddPosting(1, 11, 9.0).ok());
  ASSERT_TRUE(store->AddPosting(1, 12, 7.0).ok());
  ASSERT_TRUE(store->AddPosting(1, 10, 5.0).ok());  // duplicate ignored
  EXPECT_EQ(store->NumPostings(), 3u);
  std::vector<Posting> out;
  ASSERT_TRUE(store->QueryTerm(1, 2, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 11u);
  EXPECT_EQ(out[1].id, 12u);
  double max_score = 0;
  ASSERT_TRUE(store->MaxTermScore(1, &max_score));
  EXPECT_EQ(max_score, 9.0);
}

}  // namespace
}  // namespace kflush
