#include "storage/raw_store.h"

#include <gtest/gtest.h>

#include <thread>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

TEST(RawDataStoreTest, PutGetRoundTrip) {
  RawDataStore store;
  ASSERT_TRUE(store.Put(MakeBlog(1, 100, {5, 6}), 2).ok());
  EXPECT_TRUE(store.Contains(1));
  auto blog = store.Get(1);
  ASSERT_TRUE(blog.has_value());
  EXPECT_EQ(blog->created_at, 100u);
  EXPECT_EQ(blog->keywords, (std::vector<KeywordId>{5, 6}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(RawDataStoreTest, DuplicatePutFails) {
  RawDataStore store;
  ASSERT_TRUE(store.Put(MakeBlog(1, 100, {5}), 1).ok());
  Status s = store.Put(MakeBlog(1, 200, {6}), 1);
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(store.Get(1)->created_at, 100u);  // original intact
}

TEST(RawDataStoreTest, GetMissing) {
  RawDataStore store;
  EXPECT_FALSE(store.Get(42).has_value());
  EXPECT_FALSE(store.Contains(42));
}

TEST(RawDataStoreTest, WithVisitsInPlace) {
  RawDataStore store;
  ASSERT_TRUE(store.Put(MakeBlog(1, 100, {}, 7), 1).ok());
  bool visited = false;
  EXPECT_TRUE(store.With(1, [&](const Microblog& blog) {
    visited = true;
    EXPECT_EQ(blog.user_id, 7u);
  }));
  EXPECT_TRUE(visited);
  EXPECT_FALSE(store.With(2, [](const Microblog&) {}));
}

TEST(RawDataStoreTest, PcountLifecycle) {
  RawDataStore store;
  ASSERT_TRUE(store.Put(MakeBlog(1, 100, {1, 2, 3}), 3).ok());
  EXPECT_EQ(store.Pcount(1), 3u);
  EXPECT_EQ(store.DecrementPcount(1), 2u);
  EXPECT_EQ(store.DecrementPcount(1), 1u);
  EXPECT_EQ(store.DecrementPcount(1), 0u);
  // Saturates at zero rather than wrapping.
  EXPECT_EQ(store.DecrementPcount(1), 0u);
  // Missing records report zero.
  EXPECT_EQ(store.DecrementPcount(99), 0u);
  EXPECT_EQ(store.Pcount(99), 0u);
}

TEST(RawDataStoreTest, TopKCountLifecycle) {
  RawDataStore store;
  ASSERT_TRUE(store.Put(MakeBlog(1, 100, {1}), 1).ok());
  EXPECT_EQ(store.TopKCount(1), 0u);
  store.IncrementTopK(1);
  store.IncrementTopK(1);
  EXPECT_EQ(store.TopKCount(1), 2u);
  EXPECT_EQ(store.DecrementTopK(1), 1u);
  EXPECT_EQ(store.DecrementTopK(1), 0u);
  EXPECT_EQ(store.DecrementTopK(1), 0u);  // saturates
  store.IncrementTopK(42);                 // missing: no-op
  EXPECT_EQ(store.TopKCount(42), 0u);
}

TEST(RawDataStoreTest, RemoveReturnsRecordAndFreesBytes) {
  MemoryTracker tracker(1 << 20);
  RawDataStore store(&tracker);
  Microblog blog = MakeBlog(1, 100, {1, 2}, 1, "some text payload");
  const size_t bytes = RawDataStore::RecordBytes(blog);
  ASSERT_TRUE(store.Put(blog, 2).ok());
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kRawStore), bytes);

  auto removed = store.Remove(1);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(removed->id, 1u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kRawStore), 0u);
  EXPECT_FALSE(store.Remove(1).has_value());
}

TEST(RawDataStoreTest, MemoryBytesTracksContents) {
  RawDataStore store;
  EXPECT_EQ(store.MemoryBytes(), 0u);
  Microblog a = MakeBlog(1, 1, {1});
  Microblog b = MakeBlog(2, 2, {1, 2}, 1, std::string(100, 'x'));
  store.Put(a, 1).ok();
  store.Put(b, 2).ok();
  EXPECT_EQ(store.MemoryBytes(),
            RawDataStore::RecordBytes(a) + RawDataStore::RecordBytes(b));
}

TEST(RawDataStoreTest, ConcurrentPutsAndRemoves) {
  RawDataStore store;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const MicroblogId id =
            static_cast<MicroblogId>(t) * kPerThread + static_cast<MicroblogId>(i);
        ASSERT_TRUE(store.Put(MakeBlog(id, id, {1}), 1).ok());
      }
      // Remove every other record.
      for (int i = 0; i < kPerThread; i += 2) {
        const MicroblogId id =
            static_cast<MicroblogId>(t) * kPerThread + static_cast<MicroblogId>(i);
        ASSERT_TRUE(store.Remove(id).has_value());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(store.size(), static_cast<size_t>(kThreads) * kPerThread / 2);
}

}  // namespace
}  // namespace kflush
