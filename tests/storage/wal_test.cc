// WriteAheadLog: append/commit/replay round trips, torn-tail truncation,
// durability-level fsync accounting, the auto-commit valve, and Rewrite
// compaction. The WAL is the reason an acked-but-unflushed record
// survives a crash (docs/INTERNALS.md, "Durability").

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <utility>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::RecordsEqual;

using ReplayedEntry = std::pair<Microblog, std::vector<TermId>>;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kflush_wal_test.log";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<ReplayedEntry> ReplayAll(WriteAheadLog::ReplayResult* result) {
    std::vector<ReplayedEntry> entries;
    Status status = WriteAheadLog::Replay(
        path_,
        [&](Microblog&& blog, std::vector<TermId>&& routed) {
          entries.emplace_back(std::move(blog), std::move(routed));
          return Status::OK();
        },
        result);
    EXPECT_TRUE(status.ok()) << status.ToString();
    return entries;
  }

  long FileSize() {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    if (f == nullptr) return -1;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    return size;
  }

  std::string path_;
};

TEST_F(WalTest, MissingFileReplaysEmpty) {
  WriteAheadLog::ReplayResult result;
  EXPECT_TRUE(ReplayAll(&result).empty());
  EXPECT_EQ(result.records_recovered, 0u);
  EXPECT_EQ(result.torn_bytes_truncated, 0u);
}

TEST_F(WalTest, AppendCommitReplayRoundTrip) {
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    for (MicroblogId id = 1; id <= 10; ++id) {
      Microblog blog = MakeBlog(id, id * 100, {static_cast<KeywordId>(id % 4)},
                                id, "wal entry " + std::to_string(id));
      ASSERT_TRUE(wal->Append(blog, {static_cast<TermId>(id % 4)}).ok());
    }
    ASSERT_TRUE(wal->Commit().ok());
    const WriteAheadLog::Stats stats = wal->stats();
    EXPECT_EQ(stats.records_appended, 10u);
    EXPECT_GT(stats.bytes_appended, 0u);
    EXPECT_GE(stats.commits, 1u);
  }

  WriteAheadLog::ReplayResult result;
  std::vector<ReplayedEntry> entries = ReplayAll(&result);
  ASSERT_EQ(entries.size(), 10u);
  EXPECT_EQ(result.records_recovered, 10u);
  EXPECT_EQ(result.torn_bytes_truncated, 0u);
  for (MicroblogId id = 1; id <= 10; ++id) {
    const ReplayedEntry& entry = entries[id - 1];  // append order preserved
    Microblog expected =
        MakeBlog(id, id * 100, {static_cast<KeywordId>(id % 4)}, id,
                 "wal entry " + std::to_string(id));
    EXPECT_TRUE(RecordsEqual(entry.first, expected)) << "id " << id;
    EXPECT_EQ(entry.second,
              std::vector<TermId>{static_cast<TermId>(id % 4)});
  }
}

TEST_F(WalTest, EmptyRoutedTermsSurviveReplay) {
  // An unsharded store logs no routed terms — recovery re-extracts. The
  // empty set must round-trip as empty, not as a decode error.
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    ASSERT_TRUE(wal->Append(MakeBlog(1, 10, {7}), {}).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  WriteAheadLog::ReplayResult result;
  std::vector<ReplayedEntry> entries = ReplayAll(&result);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].second.empty());
}

TEST_F(WalTest, TornTailIsTruncatedAndAppendable) {
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    ASSERT_TRUE(wal->Append(MakeBlog(1, 10, {1}), {}).ok());
    ASSERT_TRUE(wal->Append(MakeBlog(2, 20, {2}), {}).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  const long valid_size = FileSize();
  ASSERT_GT(valid_size, 0);
  {
    // A partial frame: the crash cut the final append mid-write.
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("\x11\x22\x33\x44\x55 torn frame fragment", f);
    std::fclose(f);
  }

  WriteAheadLog::ReplayResult result;
  std::vector<ReplayedEntry> entries = ReplayAll(&result);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(result.records_recovered, 2u);
  EXPECT_GT(result.torn_bytes_truncated, 0u);
  // Replay repaired the file in place: the torn bytes are gone.
  EXPECT_EQ(FileSize(), valid_size);

  // A reopened log appends after the last valid entry.
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    ASSERT_TRUE(wal->Append(MakeBlog(3, 30, {3}), {}).ok());
    ASSERT_TRUE(wal->Commit().ok());
  }
  WriteAheadLog::ReplayResult again;
  entries = ReplayAll(&again);
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(again.torn_bytes_truncated, 0u);
  EXPECT_EQ(entries[2].first.id, 3u);
}

TEST_F(WalTest, CorruptedFrameEndsReplayAtLastValidEntry) {
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    for (MicroblogId id = 1; id <= 5; ++id) {
      ASSERT_TRUE(wal->Append(MakeBlog(id, id * 10, {1}), {}).ok());
    }
    ASSERT_TRUE(wal->Commit().ok());
  }
  // Flip a byte two-thirds in: the checksum of some middle frame breaks,
  // and everything from that frame on is the torn tail.
  const long size = FileSize();
  ASSERT_GT(size, 0);
  {
    std::FILE* f = std::fopen(path_.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, (size * 2) / 3, SEEK_SET);
    const int original = std::fgetc(f);
    ASSERT_NE(original, EOF);
    std::fseek(f, (size * 2) / 3, SEEK_SET);
    std::fputc(original ^ 0xFF, f);
    std::fclose(f);
  }
  WriteAheadLog::ReplayResult result;
  std::vector<ReplayedEntry> entries = ReplayAll(&result);
  EXPECT_LT(entries.size(), 5u);
  EXPECT_GT(result.torn_bytes_truncated, 0u);
  // The surviving prefix is intact and in order.
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ(entries[i].first.id, static_cast<MicroblogId>(i + 1));
  }
}

TEST_F(WalTest, EveryCommitLevelSyncsEachAppend) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kEveryCommit,
                                  256 << 10, &wal)
                  .ok());
  for (MicroblogId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(wal->Append(MakeBlog(id, id * 10, {1}), {}).ok());
  }
  const WriteAheadLog::Stats stats = wal->stats();
  EXPECT_GE(stats.commits, 3u);
  EXPECT_GE(stats.fsyncs, 3u);
  EXPECT_EQ(stats.fsync_micros.count(), stats.fsyncs);
}

TEST_F(WalTest, NoneLevelNeverSyncs) {
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(
      WriteAheadLog::Open(path_, DurabilityLevel::kNone, 256 << 10, &wal)
          .ok());
  for (MicroblogId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(wal->Append(MakeBlog(id, id * 10, {1}), {}).ok());
  }
  ASSERT_TRUE(wal->Commit().ok());
  EXPECT_EQ(wal->stats().fsyncs, 0u);
}

TEST_F(WalTest, AutoCommitValveBoundsUnsyncedWindow) {
  // A tiny valve: every append exceeds it, so each append group-commits
  // without anyone calling Commit().
  std::unique_ptr<WriteAheadLog> wal;
  ASSERT_TRUE(
      WriteAheadLog::Open(path_, DurabilityLevel::kBatch, 16, &wal).ok());
  for (MicroblogId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(wal->Append(MakeBlog(id, id * 10, {1}), {}).ok());
  }
  EXPECT_GE(wal->stats().commits, 4u);
  EXPECT_GE(wal->stats().fsyncs, 4u);
}

TEST_F(WalTest, RewriteCompactsToGivenEntries) {
  {
    std::unique_ptr<WriteAheadLog> wal;
    ASSERT_TRUE(WriteAheadLog::Open(path_, DurabilityLevel::kBatch,
                                    256 << 10, &wal)
                    .ok());
    for (MicroblogId id = 1; id <= 20; ++id) {
      ASSERT_TRUE(wal->Append(MakeBlog(id, id * 10, {1}), {}).ok());
    }
    ASSERT_TRUE(wal->Commit().ok());
  }
  // Compaction keeps only the two still-memory-resident entries.
  std::vector<std::pair<Microblog, std::vector<TermId>>> keep;
  keep.emplace_back(MakeBlog(19, 190, {1}), std::vector<TermId>{});
  keep.emplace_back(MakeBlog(20, 200, {1}), std::vector<TermId>{42});
  ASSERT_TRUE(
      WriteAheadLog::Rewrite(path_, DurabilityLevel::kBatch, keep).ok());

  WriteAheadLog::ReplayResult result;
  std::vector<ReplayedEntry> entries = ReplayAll(&result);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first.id, 19u);
  EXPECT_EQ(entries[1].first.id, 20u);
  EXPECT_EQ(entries[1].second, std::vector<TermId>{42});
  // No stray temp file left behind.
  std::FILE* tmp = std::fopen((path_ + ".tmp").c_str(), "rb");
  EXPECT_EQ(tmp, nullptr);
  if (tmp != nullptr) std::fclose(tmp);
}

}  // namespace
}  // namespace kflush
