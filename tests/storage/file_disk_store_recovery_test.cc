// Recovery path: reopening an existing FileDiskStore data file rebuilds
// the record catalog and (given an extractor + score function) the term
// index, so disk-side queries keep working across restarts.

#include <gtest/gtest.h>

#include <cstdio>

#include "../testing/test_util.h"
#include "storage/file_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

class FileDiskStoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kflush_recovery_test.dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileDiskStoreRecoveryTest, MissingFileOpensEmpty) {
  auto store = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->NumRecords(), 0u);
}

TEST_F(FileDiskStoreRecoveryTest, RecoversRecordCatalog) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 20; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {static_cast<KeywordId>(id % 3)},
                               id, "record " + std::to_string(id)));
    }
    ASSERT_TRUE((*store)->WriteBatch(std::move(batch)).ok());
  }  // close

  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumRecords(), 20u);
  Microblog blog;
  ASSERT_TRUE((*reopened)->GetRecord(7, &blog).ok());
  EXPECT_EQ(blog.text, "record 7");
  EXPECT_EQ(blog.created_at, 70u);
}

TEST_F(FileDiskStoreRecoveryTest, RebuildsTermIndexWithExtractor) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 10; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {5}));
    }
    batch.push_back(MakeBlog(11, 500, {9}));
    ASSERT_TRUE((*store)->WriteBatch(std::move(batch)).ok());
  }

  KeywordAttribute extractor;
  auto reopened = FileDiskStore::OpenOrRecover(
      path_, &extractor,
      [](const Microblog& blog) { return static_cast<double>(blog.created_at); });
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  std::vector<Posting> postings;
  ASSERT_TRUE((*reopened)->QueryTerm(5, 100, &postings).ok());
  ASSERT_EQ(postings.size(), 10u);
  EXPECT_EQ(postings[0].id, 10u);  // best score (most recent) first
  postings.clear();
  ASSERT_TRUE((*reopened)->QueryTerm(9, 100, &postings).ok());
  EXPECT_EQ(postings.size(), 1u);
}

TEST_F(FileDiskStoreRecoveryTest, RecoveredStoreAcceptsNewWrites) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  }
  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->WriteBatch({MakeBlog(2, 20, {1})}).ok());
  EXPECT_EQ((*reopened)->NumRecords(), 2u);
  Microblog blog;
  EXPECT_TRUE((*reopened)->GetRecord(1, &blog).ok());
  EXPECT_TRUE((*reopened)->GetRecord(2, &blog).ok());
}

TEST_F(FileDiskStoreRecoveryTest, TornTailIsTruncatedNotFatal) {
  long valid_size = 0;
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1}),
                                      MakeBlog(2, 20, {1})}).ok());
  }
  {
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    valid_size = std::ftell(f);
    std::fclose(f);
  }
  // A torn final record: the length prefix promises more bytes than the
  // crash left behind. Recovery must keep the valid prefix and truncate.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("\x40\x00\x00\x00 trailing garbage", f);
  std::fclose(f);

  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumRecords(), 2u);
  EXPECT_GT((*reopened)->stats().torn_bytes_truncated, 0u);
  Microblog blog;
  EXPECT_TRUE((*reopened)->GetRecord(1, &blog).ok());
  EXPECT_TRUE((*reopened)->GetRecord(2, &blog).ok());
  // New writes land cleanly after the truncated tail.
  ASSERT_TRUE((*reopened)->WriteBatch({MakeBlog(3, 30, {1})}).ok());
  EXPECT_EQ((*reopened)->NumRecords(), 3u);
  (*reopened).reset();

  std::FILE* check = std::fopen(path_.c_str(), "rb");
  ASSERT_NE(check, nullptr);
  std::fseek(check, 0, SEEK_END);
  EXPECT_GT(std::ftell(check), valid_size);  // garbage gone, record 3 appended
  std::fclose(check);
  auto again = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->NumRecords(), 3u);
  EXPECT_EQ((*again)->stats().torn_bytes_truncated, 0u);
}

TEST_F(FileDiskStoreRecoveryTest, EmptyFileRecoversEmpty) {
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  auto store = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->NumRecords(), 0u);
  EXPECT_EQ((*store)->stats().records_recovered, 0u);
  ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  EXPECT_EQ((*store)->NumRecords(), 1u);
}

TEST_F(FileDiskStoreRecoveryTest, OpenRefusesToTruncateExistingData) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  }
  // The silent-data-loss path: Open used to fopen "w+b" and wipe the file.
  auto clobber = FileDiskStore::Open(path_);
  ASSERT_FALSE(clobber.ok());
  EXPECT_TRUE(clobber.status().IsAlreadyExists())
      << clobber.status().ToString();
  // The data survived the refused Open.
  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->NumRecords(), 1u);
}

TEST_F(FileDiskStoreRecoveryTest, RecoveryDoesNotInflateWriteCounters) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1}),
                                      MakeBlog(2, 20, {1})}).ok());
    EXPECT_EQ((*store)->stats().records_written, 2u);
  }
  // Repeated open/recover cycles: recovered records are counted as
  // recovered, never re-counted as written.
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto reopened = FileDiskStore::OpenOrRecover(path_);
    ASSERT_TRUE(reopened.ok());
    const DiskStats stats = (*reopened)->stats();
    EXPECT_EQ(stats.records_recovered, 2u + cycle);
    EXPECT_EQ(stats.records_written, 0u);
    EXPECT_EQ(stats.record_bytes_written, 0u);
    ASSERT_TRUE((*reopened)
                    ->WriteBatch({MakeBlog(static_cast<MicroblogId>(3 + cycle),
                                           30, {1})})
                    .ok());
    EXPECT_EQ((*reopened)->stats().records_written, 1u);
  }
}

}  // namespace
}  // namespace kflush
