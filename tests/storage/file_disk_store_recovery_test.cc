// Recovery path: reopening an existing FileDiskStore data file rebuilds
// the record catalog and (given an extractor + score function) the term
// index, so disk-side queries keep working across restarts.

#include <gtest/gtest.h>

#include <cstdio>

#include "../testing/test_util.h"
#include "storage/file_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

class FileDiskStoreRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/kflush_recovery_test.dat";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(FileDiskStoreRecoveryTest, MissingFileOpensEmpty) {
  auto store = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->NumRecords(), 0u);
}

TEST_F(FileDiskStoreRecoveryTest, RecoversRecordCatalog) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 20; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {static_cast<KeywordId>(id % 3)},
                               id, "record " + std::to_string(id)));
    }
    ASSERT_TRUE((*store)->WriteBatch(std::move(batch)).ok());
  }  // close

  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->NumRecords(), 20u);
  Microblog blog;
  ASSERT_TRUE((*reopened)->GetRecord(7, &blog).ok());
  EXPECT_EQ(blog.text, "record 7");
  EXPECT_EQ(blog.created_at, 70u);
}

TEST_F(FileDiskStoreRecoveryTest, RebuildsTermIndexWithExtractor) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    std::vector<Microblog> batch;
    for (MicroblogId id = 1; id <= 10; ++id) {
      batch.push_back(MakeBlog(id, id * 10, {5}));
    }
    batch.push_back(MakeBlog(11, 500, {9}));
    ASSERT_TRUE((*store)->WriteBatch(std::move(batch)).ok());
  }

  KeywordAttribute extractor;
  auto reopened = FileDiskStore::OpenOrRecover(
      path_, &extractor,
      [](const Microblog& blog) { return static_cast<double>(blog.created_at); });
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  std::vector<Posting> postings;
  ASSERT_TRUE((*reopened)->QueryTerm(5, 100, &postings).ok());
  ASSERT_EQ(postings.size(), 10u);
  EXPECT_EQ(postings[0].id, 10u);  // best score (most recent) first
  postings.clear();
  ASSERT_TRUE((*reopened)->QueryTerm(9, 100, &postings).ok());
  EXPECT_EQ(postings.size(), 1u);
}

TEST_F(FileDiskStoreRecoveryTest, RecoveredStoreAcceptsNewWrites) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  }
  auto reopened = FileDiskStore::OpenOrRecover(path_);
  ASSERT_TRUE(reopened.ok());
  ASSERT_TRUE((*reopened)->WriteBatch({MakeBlog(2, 20, {1})}).ok());
  EXPECT_EQ((*reopened)->NumRecords(), 2u);
  Microblog blog;
  EXPECT_TRUE((*reopened)->GetRecord(1, &blog).ok());
  EXPECT_TRUE((*reopened)->GetRecord(2, &blog).ok());
}

TEST_F(FileDiskStoreRecoveryTest, CorruptTailIsReported) {
  {
    auto store = FileDiskStore::Open(path_);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->WriteBatch({MakeBlog(1, 10, {1})}).ok());
  }
  // Append garbage.
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  std::fputs("\x40\x00\x00\x00 trailing garbage", f);
  std::fclose(f);
  auto reopened = FileDiskStore::OpenOrRecover(path_);
  EXPECT_FALSE(reopened.ok());
  EXPECT_TRUE(reopened.status().IsCorruption());
}

}  // namespace
}  // namespace kflush
