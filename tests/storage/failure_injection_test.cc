// Failure injection: a disk tier that fails on demand. The store must
// survive flush-path I/O errors without crashing, deadlocking, or
// corrupting its in-memory state — degraded answers, not broken ones.

#include <gtest/gtest.h>

#include <atomic>

#include "../testing/test_util.h"
#include "core/query_engine.h"
#include "storage/sim_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

/// Decorator that injects failures into a SimDiskStore.
class FlakyDiskStore : public DiskStore {
 public:
  std::atomic<bool> fail_postings{false};
  std::atomic<bool> fail_batches{false};
  std::atomic<bool> fail_queries{false};

  Status AddPosting(TermId term, MicroblogId id, double score) override {
    if (fail_postings.load()) return Status::IOError("injected");
    return inner_.AddPosting(term, id, score);
  }
  Status WriteBatch(std::vector<Microblog> batch) override {
    if (fail_batches.load()) return Status::IOError("injected");
    return inner_.WriteBatch(std::move(batch));
  }
  Status QueryTerm(TermId term, size_t limit,
                   std::vector<Posting>* out) override {
    if (fail_queries.load()) return Status::IOError("injected");
    return inner_.QueryTerm(term, limit, out);
  }
  Status GetRecord(MicroblogId id, Microblog* out) override {
    return inner_.GetRecord(id, out);
  }
  DiskStats stats() const override { return inner_.stats(); }
  size_t NumRecords() const override { return inner_.NumRecords(); }
  size_t NumPostings() const override { return inner_.NumPostings(); }

 private:
  SimDiskStore inner_;
};

TEST(FailureInjectionTest, FlushSurvivesPostingFailures) {
  FlakyDiskStore disk;
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, 5);
  opts.disk = &disk;
  MicroblogStore store(opts);
  for (MicroblogId id = 1; id <= 30; ++id) {
    ASSERT_TRUE(store.Insert(MakeBlog(id, id * 10, {1})).ok());
  }
  disk.fail_postings.store(true);
  const size_t used_before = store.tracker().DataUsed();
  const size_t freed = store.FlushOnce();
  // Memory is still reclaimed even though the disk lost the postings.
  EXPECT_GT(freed, 0u);
  EXPECT_LT(store.tracker().DataUsed(), used_before);
}

TEST(FailureInjectionTest, FlushSurvivesBatchWriteFailure) {
  FlakyDiskStore disk;
  StoreOptions opts = SmallStoreOptions(PolicyKind::kFifo, 1 << 20, 5);
  opts.disk = &disk;
  MicroblogStore store(opts);
  testing_util::FillRoundRobin(&store, 200, 10);
  disk.fail_batches.store(true);
  EXPECT_GT(store.FlushOnce(), 0u);
  // The store remains usable for ingest and flush afterwards.
  disk.fail_batches.store(false);
  testing_util::FillRoundRobin(&store, 100, 10, /*start_ts=*/100000);
  EXPECT_GT(store.FlushOnce(), 0u);
  EXPECT_GT(disk.NumRecords(), 0u);
}

TEST(FailureInjectionTest, QueryPropagatesDiskReadErrors) {
  FlakyDiskStore disk;
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, 5);
  opts.disk = &disk;
  MicroblogStore store(opts);
  QueryEngine engine(&store);
  // Only 2 postings in memory: the query must go to disk and hit the
  // injected error, which surfaces as a Status rather than a wrong
  // answer.
  ASSERT_TRUE(store.Insert(MakeBlog(1, 10, {1})).ok());
  ASSERT_TRUE(store.Insert(MakeBlog(2, 20, {1})).ok());
  disk.fail_queries.store(true);
  TopKQuery q;
  q.terms = {1};
  q.type = QueryType::kSingle;
  auto result = engine.Execute(q);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
  // Metrics must not count the failed query.
  EXPECT_EQ(engine.metrics().queries, 0u);
  // And the engine recovers once the disk does.
  disk.fail_queries.store(false);
  auto retry = engine.Execute(q);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(retry->results.size(), 2u);
}

TEST(FailureInjectionTest, AllPoliciesSurviveFlakyFlushes) {
  for (PolicyKind policy : testing_util::AllPolicies()) {
    FlakyDiskStore disk;
    StoreOptions opts = SmallStoreOptions(policy, 256 << 10, 5);
    opts.disk = &disk;
    opts.auto_flush = true;
    MicroblogStore store(opts);
    // Toggle failures while streaming enough to trigger several flushes.
    for (int i = 0; i < 3000; ++i) {
      disk.fail_postings.store(i % 3 == 0);
      disk.fail_batches.store(i % 5 == 0);
      Microblog blog;
      blog.created_at = 1000 + static_cast<Timestamp>(i);
      blog.keywords = {static_cast<KeywordId>(i % 50)};
      blog.text = "failure injection filler text for realistic size";
      ASSERT_TRUE(store.Insert(std::move(blog)).ok()) << PolicyKindName(policy);
    }
    EXPECT_GT(store.ingest_stats().flush_triggers, 0u)
        << PolicyKindName(policy);
    // Memory stayed bounded despite the chaos.
    EXPECT_LT(store.tracker().DataUsed(), (256u << 10) * 2)
        << PolicyKindName(policy);
  }
}

}  // namespace
}  // namespace kflush
