#include "storage/flush_buffer.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "storage/sim_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

TEST(FlushBufferTest, StartsEmpty) {
  FlushBuffer buffer;
  EXPECT_EQ(buffer.count(), 0u);
  EXPECT_EQ(buffer.bytes(), 0u);
}

TEST(FlushBufferTest, AddAccumulatesAndCharges) {
  MemoryTracker tracker(1 << 20);
  FlushBuffer buffer(&tracker);
  Microblog blog = MakeBlog(1, 1, {1}, 1, "buffered payload");
  const size_t bytes = blog.FootprintBytes();
  buffer.Add(std::move(blog));
  EXPECT_EQ(buffer.count(), 1u);
  EXPECT_EQ(buffer.bytes(), bytes);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), bytes);
}

TEST(FlushBufferTest, DrainWritesOneBatchAndReleases) {
  MemoryTracker tracker(1 << 20);
  FlushBuffer buffer(&tracker);
  SimDiskStore disk;
  for (MicroblogId id = 1; id <= 5; ++id) {
    buffer.Add(MakeBlog(id, id, {1}));
  }
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  EXPECT_EQ(buffer.count(), 0u);
  EXPECT_EQ(buffer.bytes(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
  EXPECT_EQ(disk.NumRecords(), 5u);
  EXPECT_EQ(disk.stats().write_batches, 1u);  // single batched write
}

TEST(FlushBufferTest, DrainEmptyIsNoop) {
  FlushBuffer buffer;
  SimDiskStore disk;
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  EXPECT_EQ(disk.stats().write_batches, 0u);
}

TEST(FlushBufferTest, PeakBytesTracksHighWater) {
  FlushBuffer buffer;
  SimDiskStore disk;
  buffer.Add(MakeBlog(1, 1, {1}, 1, std::string(500, 'a')));
  const size_t peak1 = buffer.peak_bytes();
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  buffer.Add(MakeBlog(2, 2, {1}, 1, "tiny"));
  EXPECT_EQ(buffer.peak_bytes(), peak1);  // smaller refill keeps the peak
  buffer.Add(MakeBlog(3, 3, {1}, 1, std::string(2000, 'b')));
  EXPECT_GT(buffer.peak_bytes(), peak1);
}

TEST(FlushBufferTest, DestructorReleasesCharges) {
  MemoryTracker tracker(1 << 20);
  {
    FlushBuffer buffer(&tracker);
    buffer.Add(MakeBlog(1, 1, {1}));
    EXPECT_GT(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
  }
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
}

}  // namespace
}  // namespace kflush
