#include "storage/flush_buffer.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "storage/sim_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

TEST(FlushBufferTest, StartsEmpty) {
  FlushBuffer buffer;
  EXPECT_EQ(buffer.count(), 0u);
  EXPECT_EQ(buffer.bytes(), 0u);
}

TEST(FlushBufferTest, AddAccumulatesAndCharges) {
  MemoryTracker tracker(1 << 20);
  FlushBuffer buffer(&tracker);
  Microblog blog = MakeBlog(1, 1, {1}, 1, "buffered payload");
  const size_t bytes = blog.FootprintBytes();
  buffer.Add(std::move(blog));
  EXPECT_EQ(buffer.count(), 1u);
  EXPECT_EQ(buffer.bytes(), bytes);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), bytes);
}

TEST(FlushBufferTest, DrainWritesOneBatchAndReleases) {
  MemoryTracker tracker(1 << 20);
  FlushBuffer buffer(&tracker);
  SimDiskStore disk;
  for (MicroblogId id = 1; id <= 5; ++id) {
    buffer.Add(MakeBlog(id, id, {1}));
  }
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  EXPECT_EQ(buffer.count(), 0u);
  EXPECT_EQ(buffer.bytes(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
  EXPECT_EQ(disk.NumRecords(), 5u);
  EXPECT_EQ(disk.stats().write_batches, 1u);  // single batched write
}

TEST(FlushBufferTest, DrainEmptyIsNoop) {
  FlushBuffer buffer;
  SimDiskStore disk;
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  EXPECT_EQ(disk.stats().write_batches, 0u);
}

TEST(FlushBufferTest, PeakBytesTracksHighWater) {
  FlushBuffer buffer;
  SimDiskStore disk;
  buffer.Add(MakeBlog(1, 1, {1}, 1, std::string(500, 'a')));
  const size_t peak1 = buffer.peak_bytes();
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  buffer.Add(MakeBlog(2, 2, {1}, 1, "tiny"));
  EXPECT_EQ(buffer.peak_bytes(), peak1);  // smaller refill keeps the peak
  buffer.Add(MakeBlog(3, 3, {1}, 1, std::string(2000, 'b')));
  EXPECT_GT(buffer.peak_bytes(), peak1);
}

/// Fails every WriteBatch until told otherwise; delegates the rest.
class FailingDiskStore : public SimDiskStore {
 public:
  bool fail = true;
  Status WriteBatch(std::vector<Microblog> batch) override {
    if (fail) return Status::IOError("injected write failure");
    return SimDiskStore::WriteBatch(std::move(batch));
  }
};

TEST(FlushBufferTest, FailedDrainRequeuesAndKeepsCharge) {
  MemoryTracker tracker(1 << 20);
  FlushBuffer buffer(&tracker);
  FailingDiskStore disk;
  for (MicroblogId id = 1; id <= 4; ++id) {
    buffer.Add(MakeBlog(id, id * 10, {1}, 1, "record " + std::to_string(id)));
  }
  const size_t charged = tracker.ComponentUsed(MemoryComponent::kFlushBuffer);
  ASSERT_GT(charged, 0u);

  // The old DrainTo released the tracker charge up front and destroyed the
  // batch on failure — silent data loss. Now the records come back, the
  // memory accounting stays, and the failure is visible in requeues().
  Status status = buffer.DrainTo(&disk);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_EQ(buffer.count(), 4u);
  EXPECT_EQ(buffer.bytes(), charged);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), charged);
  EXPECT_EQ(buffer.requeues(), 1u);
  EXPECT_EQ(disk.NumRecords(), 0u);

  // Once the disk heals, the retry drains everything in original order.
  disk.fail = false;
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  EXPECT_EQ(buffer.count(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
  EXPECT_EQ(disk.NumRecords(), 4u);
  Microblog blog;
  for (MicroblogId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(disk.GetRecord(id, &blog).ok());
    EXPECT_EQ(blog.text, "record " + std::to_string(id));
  }
}

TEST(FlushBufferTest, RequeuePreservesOrderAheadOfNewArrivals) {
  FlushBuffer buffer;
  FailingDiskStore disk;
  buffer.Add(MakeBlog(1, 10, {1}));
  buffer.Add(MakeBlog(2, 20, {1}));
  EXPECT_TRUE(buffer.DrainTo(&disk).IsIOError());
  buffer.Add(MakeBlog(3, 30, {1}));  // arrives after the failed drain
  disk.fail = false;
  ASSERT_TRUE(buffer.DrainTo(&disk).ok());
  // SimDiskStore records arrival order via its batch log: the requeued
  // originals must precede the post-failure arrival.
  EXPECT_EQ(disk.NumRecords(), 3u);
  EXPECT_EQ(disk.stats().write_batches, 1u);
}

TEST(FlushBufferTest, DestructorReleasesCharges) {
  MemoryTracker tracker(1 << 20);
  {
    FlushBuffer buffer(&tracker);
    buffer.Add(MakeBlog(1, 1, {1}));
    EXPECT_GT(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
  }
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kFlushBuffer), 0u);
}

}  // namespace
}  // namespace kflush
