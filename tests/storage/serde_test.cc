#include "storage/serde.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::MakeGeoBlog;

void ExpectEqualBlogs(const Microblog& a, const Microblog& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.created_at, b.created_at);
  EXPECT_EQ(a.user_id, b.user_id);
  EXPECT_EQ(a.follower_count, b.follower_count);
  EXPECT_EQ(a.has_location, b.has_location);
  if (a.has_location) {
    EXPECT_DOUBLE_EQ(a.location.lat, b.location.lat);
    EXPECT_DOUBLE_EQ(a.location.lon, b.location.lon);
  }
  EXPECT_EQ(a.keywords, b.keywords);
  EXPECT_EQ(a.text, b.text);
}

TEST(SerdeTest, RoundTripBasic) {
  Microblog blog = MakeBlog(7, 1234, {1, 2, 3}, 42, "hello #world");
  blog.follower_count = 99;
  std::string buf;
  EncodeMicroblog(blog, &buf);
  Microblog decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
  EXPECT_EQ(consumed, buf.size());
  ExpectEqualBlogs(blog, decoded);
}

TEST(SerdeTest, RoundTripWithLocation) {
  Microblog blog = MakeGeoBlog(9, 555, 44.97, -93.26, 3);
  std::string buf;
  EncodeMicroblog(blog, &buf);
  Microblog decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
  ExpectEqualBlogs(blog, decoded);
}

TEST(SerdeTest, RoundTripEmptyFields) {
  Microblog blog;
  blog.id = 1;
  std::string buf;
  EncodeMicroblog(blog, &buf);
  Microblog decoded;
  size_t consumed = 0;
  ASSERT_TRUE(DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
  ExpectEqualBlogs(blog, decoded);
}

TEST(SerdeTest, MultipleRecordsDecodeSequentially) {
  std::string buf;
  std::vector<Microblog> blogs;
  for (MicroblogId id = 1; id <= 10; ++id) {
    blogs.push_back(MakeBlog(id, id * 10, {static_cast<KeywordId>(id)}));
    EncodeMicroblog(blogs.back(), &buf);
  }
  size_t pos = 0;
  for (const Microblog& expected : blogs) {
    Microblog decoded;
    size_t consumed = 0;
    ASSERT_TRUE(
        DecodeMicroblog(buf.data() + pos, buf.size() - pos, &decoded, &consumed)
            .ok());
    ExpectEqualBlogs(expected, decoded);
    pos += consumed;
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(SerdeTest, TruncationIsCorruption) {
  Microblog blog = MakeBlog(7, 1234, {1, 2}, 42, "payload text");
  std::string buf;
  EncodeMicroblog(blog, &buf);
  Microblog decoded;
  size_t consumed = 0;
  // Every strict prefix must fail cleanly.
  for (size_t len = 0; len < buf.size(); ++len) {
    Status s = DecodeMicroblog(buf.data(), len, &decoded, &consumed);
    EXPECT_TRUE(s.IsCorruption()) << "len=" << len;
  }
}

TEST(SerdeTest, FuzzRoundTripGeneratedTweets) {
  TweetGeneratorOptions opts;
  opts.seed = 77;
  TweetGenerator gen(opts);
  for (int i = 0; i < 500; ++i) {
    Microblog blog = gen.Next();
    blog.id = static_cast<MicroblogId>(i + 1);
    std::string buf;
    EncodeMicroblog(blog, &buf);
    Microblog decoded;
    size_t consumed = 0;
    ASSERT_TRUE(
        DecodeMicroblog(buf.data(), buf.size(), &decoded, &consumed).ok());
    ExpectEqualBlogs(blog, decoded);
  }
}

}  // namespace
}  // namespace kflush
