// Parameterized parity suite: SimDiskStore and FileDiskStore must behave
// identically through the DiskStore interface.

#include "storage/disk_store.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>

#include "../testing/test_util.h"
#include "storage/file_disk_store.h"
#include "storage/sim_disk_store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;

enum class StoreType { kSim, kFile };

class DiskStoreTest : public ::testing::TestWithParam<StoreType> {
 protected:
  void SetUp() override {
    if (GetParam() == StoreType::kSim) {
      store_ = std::make_unique<SimDiskStore>();
    } else {
      path_ = ::testing::TempDir() + "/kflush_disk_test.dat";
      std::remove(path_.c_str());  // Open is exclusive-create
      auto opened = FileDiskStore::Open(path_);
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = std::move(opened).value();
    }
  }

  void TearDown() override {
    store_.reset();
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::unique_ptr<DiskStore> store_;
  std::string path_;
};

TEST_P(DiskStoreTest, EmptyQueries) {
  std::vector<Posting> out;
  ASSERT_TRUE(store_->QueryTerm(5, 10, &out).ok());
  EXPECT_TRUE(out.empty());
  Microblog blog;
  EXPECT_TRUE(store_->GetRecord(1, &blog).IsNotFound());
  EXPECT_EQ(store_->NumRecords(), 0u);
  EXPECT_EQ(store_->NumPostings(), 0u);
}

TEST_P(DiskStoreTest, PostingsComeBackScoreOrdered) {
  ASSERT_TRUE(store_->AddPosting(1, 10, 5.0).ok());
  ASSERT_TRUE(store_->AddPosting(1, 11, 9.0).ok());
  ASSERT_TRUE(store_->AddPosting(1, 12, 7.0).ok());
  std::vector<Posting> out;
  ASSERT_TRUE(store_->QueryTerm(1, 10, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 11u);
  EXPECT_EQ(out[1].id, 12u);
  EXPECT_EQ(out[2].id, 10u);
}

TEST_P(DiskStoreTest, QueryTermRespectsLimit) {
  for (MicroblogId id = 0; id < 20; ++id) {
    ASSERT_TRUE(store_->AddPosting(1, id, static_cast<double>(id)).ok());
  }
  std::vector<Posting> out;
  ASSERT_TRUE(store_->QueryTerm(1, 5, &out).ok());
  EXPECT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].id, 19u);
}

TEST_P(DiskStoreTest, DuplicatePostingIgnored) {
  ASSERT_TRUE(store_->AddPosting(1, 10, 5.0).ok());
  ASSERT_TRUE(store_->AddPosting(1, 10, 5.0).ok());
  EXPECT_EQ(store_->NumPostings(), 1u);
}

TEST_P(DiskStoreTest, WriteBatchThenGetRecord) {
  std::vector<Microblog> batch;
  batch.push_back(MakeBlog(1, 100, {1, 2}, 7, "first record"));
  batch.push_back(MakeBlog(2, 200, {3}, 8, "second record"));
  ASSERT_TRUE(store_->WriteBatch(std::move(batch)).ok());
  EXPECT_EQ(store_->NumRecords(), 2u);

  Microblog blog;
  ASSERT_TRUE(store_->GetRecord(2, &blog).ok());
  EXPECT_EQ(blog.created_at, 200u);
  EXPECT_EQ(blog.text, "second record");
  ASSERT_TRUE(store_->GetRecord(1, &blog).ok());
  EXPECT_EQ(blog.keywords, (std::vector<KeywordId>{1, 2}));
}

TEST_P(DiskStoreTest, MultipleBatchesAccumulate) {
  for (int b = 0; b < 5; ++b) {
    std::vector<Microblog> batch;
    for (int i = 0; i < 10; ++i) {
      batch.push_back(MakeBlog(static_cast<MicroblogId>(b * 10 + i + 1),
                               100, {1}, 1, "batch record " + std::to_string(b)));
    }
    ASSERT_TRUE(store_->WriteBatch(std::move(batch)).ok());
  }
  EXPECT_EQ(store_->NumRecords(), 50u);
  Microblog blog;
  ASSERT_TRUE(store_->GetRecord(37, &blog).ok());
  EXPECT_EQ(blog.text, "batch record 3");
  EXPECT_EQ(store_->stats().write_batches, 5u);
  EXPECT_EQ(store_->stats().records_written, 50u);
}

TEST_P(DiskStoreTest, StatsCountAccesses) {
  ASSERT_TRUE(store_->AddPosting(1, 10, 5.0).ok());
  std::vector<Posting> out;
  ASSERT_TRUE(store_->QueryTerm(1, 10, &out).ok());
  ASSERT_TRUE(store_->QueryTerm(2, 10, &out).ok());
  const DiskStats stats = store_->stats();
  EXPECT_EQ(stats.postings_added, 1u);
  EXPECT_EQ(stats.term_queries, 2u);
}

TEST_P(DiskStoreTest, EmptyBatchIsOk) {
  ASSERT_TRUE(store_->WriteBatch({}).ok());
  EXPECT_EQ(store_->NumRecords(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Backends, DiskStoreTest,
                         ::testing::Values(StoreType::kSim, StoreType::kFile),
                         [](const auto& info) {
                           return info.param == StoreType::kSim ? "Sim"
                                                                : "File";
                         });

TEST(FileDiskStoreTest, OpenFailsOnBadPath) {
  auto opened = FileDiskStore::Open("/nonexistent-dir/file.dat");
  EXPECT_FALSE(opened.ok());
  EXPECT_TRUE(opened.status().IsIOError());
}

TEST(FileDiskStoreTest, LargeRecordsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/kflush_large.dat";
  std::remove(path.c_str());
  auto opened = FileDiskStore::Open(path);
  ASSERT_TRUE(opened.ok());
  auto store = std::move(opened).value();
  std::vector<Microblog> batch;
  batch.push_back(MakeBlog(1, 1, {}, 1, std::string(64 * 1024, 'q')));
  ASSERT_TRUE(store->WriteBatch(std::move(batch)).ok());
  Microblog blog;
  ASSERT_TRUE(store->GetRecord(1, &blog).ok());
  EXPECT_EQ(blog.text.size(), 64u * 1024);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace kflush
