// Model-based fuzz test: PostingList against a trivial reference model
// (a sorted std::vector) through long random operation sequences.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/posting_list.h"
#include "util/random.h"

namespace kflush {
namespace {

/// Reference implementation: a vector kept sorted descending by
/// (score, id-newer-first-on-tie via stable insertion order semantics).
class ModelList {
 public:
  void Insert(MicroblogId id, double score) {
    // Mirror PostingList semantics: a new posting goes before the first
    // strictly-smaller score; on equal scores it goes first only when it
    // is the new head (fast path), otherwise after existing equals.
    if (items_.empty() || score >= items_.front().score) {
      items_.insert(items_.begin(), {id, score});
      return;
    }
    auto it = std::upper_bound(
        items_.begin(), items_.end(), score,
        [](double s, const Posting& p) { return s >= p.score; });
    items_.insert(it, {id, score});
  }

  void TrimBeyondK(size_t k) {
    if (items_.size() > k) items_.resize(k);
  }

  bool Remove(MicroblogId id) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].id == id) {
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  const std::vector<Posting>& items() const { return items_; }

 private:
  std::vector<Posting> items_;
};

void ExpectEquivalent(const PostingList& list, const ModelList& model) {
  ASSERT_EQ(list.size(), model.items().size());
  for (size_t i = 0; i < model.items().size(); ++i) {
    ASSERT_EQ(list.at(i).id, model.items()[i].id) << "position " << i;
    ASSERT_DOUBLE_EQ(list.at(i).score, model.items()[i].score);
  }
}

class PostingListModelTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PostingListModelTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  PostingList list;
  ModelList model;
  MicroblogId next_id = 1;
  std::vector<MicroblogId> live;

  for (int op = 0; op < 3000; ++op) {
    const uint64_t action = rng.Uniform(10);
    if (action < 6) {
      // Insert with mostly-increasing scores (temporal-ish) and
      // occasional out-of-order / duplicate scores.
      double score;
      if (rng.Bernoulli(0.8)) {
        score = static_cast<double>(op);
      } else {
        score = static_cast<double>(rng.Uniform(op + 1));
      }
      list.Insert(next_id, score);
      model.Insert(next_id, score);
      live.push_back(next_id);
      ++next_id;
    } else if (action < 8 && !live.empty()) {
      // Remove a random live id (or a missing one occasionally).
      MicroblogId id;
      if (rng.Bernoulli(0.9)) {
        const size_t pos = rng.Uniform(live.size());
        id = live[pos];
        live.erase(live.begin() + static_cast<ptrdiff_t>(pos));
      } else {
        id = 1'000'000 + rng.Uniform(1000);
      }
      const bool a = list.Remove(id, 5, nullptr, nullptr);
      const bool b = model.Remove(id);
      ASSERT_EQ(a, b);
    } else {
      // Trim beyond a random k.
      const size_t k = rng.Uniform(40);
      std::vector<Posting> trimmed;
      list.TrimBeyondK(k, nullptr, &trimmed);
      for (const Posting& p : trimmed) {
        live.erase(std::remove(live.begin(), live.end(), p.id), live.end());
      }
      model.TrimBeyondK(k);
    }
    if (op % 100 == 0) ExpectEquivalent(list, model);
  }
  ExpectEquivalent(list, model);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PostingListModelTest,
                         ::testing::Values(1, 2, 3, 4, 5, 99, 1234, 777777));

}  // namespace
}  // namespace kflush
