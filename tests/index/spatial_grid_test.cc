#include "index/spatial_grid.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace kflush {
namespace {

TEST(BoundingBoxTest, Contains) {
  BoundingBox box{10.0, 20.0, 11.0, 21.0};
  EXPECT_TRUE(box.Contains({10.5, 20.5}));
  EXPECT_TRUE(box.Contains({10.0, 20.0}));  // inclusive edges
  EXPECT_FALSE(box.Contains({9.9, 20.5}));
  EXPECT_FALSE(box.Contains({10.5, 21.1}));
}

TEST(TilesOverlappingTest, SinglePointBoxIsOneTile) {
  SpatialGridMapper mapper(1.0);
  BoundingBox box{10.5, 20.5, 10.5, 20.5};
  auto tiles = TilesOverlapping(mapper, box);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], mapper.TileFor(10.5, 20.5));
}

TEST(TilesOverlappingTest, CoversBox) {
  SpatialGridMapper mapper(1.0);
  BoundingBox box{10.2, 20.2, 12.8, 21.8};
  auto tiles = TilesOverlapping(mapper, box);
  // 3 rows (10, 11, 12) x 2 cols (20, 21).
  EXPECT_EQ(tiles.size(), 6u);
  std::set<TermId> tile_set(tiles.begin(), tiles.end());
  for (double lat : {10.5, 11.5, 12.5}) {
    for (double lon : {20.5, 21.5}) {
      EXPECT_TRUE(tile_set.count(mapper.TileFor(lat, lon)) > 0)
          << lat << "," << lon;
    }
  }
}

TEST(TilesOverlappingTest, EmptyForInvertedBox) {
  SpatialGridMapper mapper(1.0);
  BoundingBox box{12.0, 20.0, 10.0, 21.0};  // min_lat > max_lat
  EXPECT_TRUE(TilesOverlapping(mapper, box).empty());
}

TEST(TilesOverlappingTest, RespectsMaxTiles) {
  SpatialGridMapper mapper(0.1);
  BoundingBox box{10.0, 20.0, 15.0, 25.0};
  auto tiles = TilesOverlapping(mapper, box, 10);
  EXPECT_EQ(tiles.size(), 10u);
}

TEST(TileNeighborhoodTest, RadiusZeroIsCenter) {
  SpatialGridMapper mapper(1.0);
  auto tiles = TileNeighborhood(mapper, 10.5, 20.5, 0);
  ASSERT_EQ(tiles.size(), 1u);
  EXPECT_EQ(tiles[0], mapper.TileFor(10.5, 20.5));
}

TEST(TileNeighborhoodTest, RadiusOneIsNineTiles) {
  SpatialGridMapper mapper(1.0);
  auto tiles = TileNeighborhood(mapper, 10.5, 20.5, 1);
  EXPECT_EQ(tiles.size(), 9u);
  const TermId center = mapper.TileFor(10.5, 20.5);
  EXPECT_NE(std::find(tiles.begin(), tiles.end(), center), tiles.end());
  // All distinct.
  std::set<TermId> distinct(tiles.begin(), tiles.end());
  EXPECT_EQ(distinct.size(), 9u);
}

TEST(TileNeighborhoodTest, ClipsAtGridEdge) {
  SpatialGridMapper mapper(1.0);
  auto tiles = TileNeighborhood(mapper, -89.6, -179.6, 1);
  // Bottom-left corner: row-1 and col-1 out of range -> 2x2 = 4 tiles.
  EXPECT_EQ(tiles.size(), 4u);
}

}  // namespace
}  // namespace kflush
