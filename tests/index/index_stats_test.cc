#include "index/index_stats.h"

#include <gtest/gtest.h>

#include <numeric>

namespace kflush {
namespace {

TEST(IndexStatsTest, EmptySnapshot) {
  auto snap = ComputeFrequencySnapshot({}, 20);
  EXPECT_EQ(snap.num_entries, 0u);
  EXPECT_EQ(snap.total_postings, 0u);
  EXPECT_EQ(snap.k_filled_entries, 0u);
  EXPECT_DOUBLE_EQ(snap.useless_fraction, 0.0);
}

TEST(IndexStatsTest, CountsKFilled) {
  // sizes: 5, 20, 21, 100 with k=20 -> k_filled = 3 (>= 20).
  auto snap = ComputeFrequencySnapshot({5, 20, 21, 100}, 20);
  EXPECT_EQ(snap.num_entries, 4u);
  EXPECT_EQ(snap.k_filled_entries, 3u);
}

TEST(IndexStatsTest, UselessPostingsAreBeyondK) {
  // sizes 30 and 10 with k=20: useless = 10 + 0 = 10 of 40 total.
  auto snap = ComputeFrequencySnapshot({30, 10}, 20);
  EXPECT_EQ(snap.useless_postings, 10u);
  EXPECT_EQ(snap.total_postings, 40u);
  EXPECT_DOUBLE_EQ(snap.useless_fraction, 0.25);
}

TEST(IndexStatsTest, ExactlyKIsNotUseless) {
  auto snap = ComputeFrequencySnapshot({20, 20, 20}, 20);
  EXPECT_EQ(snap.useless_postings, 0u);
  EXPECT_EQ(snap.k_filled_entries, 3u);
}

TEST(IndexStatsTest, MeanAndMax) {
  auto snap = ComputeFrequencySnapshot({1, 2, 3, 10}, 5);
  EXPECT_EQ(snap.max_entry_size, 10u);
  EXPECT_DOUBLE_EQ(snap.mean_entry_size, 4.0);
}

TEST(IndexStatsTest, HistogramBucketsSumToEntries) {
  std::vector<size_t> sizes = {1, 1, 3, 7, 15, 60, 300, 2000, 9000};
  auto snap = ComputeFrequencySnapshot(sizes, 20);
  const size_t total = std::accumulate(snap.size_histogram.begin(),
                                       snap.size_histogram.end(), size_t{0});
  EXPECT_EQ(total, sizes.size());
}

TEST(IndexStatsTest, SkewedDistributionIsMostlyUseless) {
  // One dominant keyword with 1000 postings, 99 rare ones with 1 each:
  // at k=20, useless = 980 of 1099 ≈ 89% — the paper's Figure 1 shape.
  std::vector<size_t> sizes(100, 1);
  sizes[0] = 1000;
  auto snap = ComputeFrequencySnapshot(sizes, 20);
  EXPECT_GT(snap.useless_fraction, 0.85);
  EXPECT_EQ(snap.k_filled_entries, 1u);
}

TEST(IndexStatsTest, ToStringContainsFields) {
  auto snap = ComputeFrequencySnapshot({30, 10}, 20);
  const std::string s = snap.ToString();
  EXPECT_NE(s.find("entries=2"), std::string::npos);
  EXPECT_NE(s.find("useless=10"), std::string::npos);
}

}  // namespace
}  // namespace kflush
