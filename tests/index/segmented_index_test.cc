#include "index/segmented_index.h"

#include <gtest/gtest.h>

#include <map>

namespace kflush {
namespace {

TEST(SegmentedIndexTest, StartsWithOneSegment) {
  SegmentedIndex index;
  EXPECT_EQ(index.NumSegments(), 1u);
  EXPECT_EQ(index.NumTerms(), 0u);
}

TEST(SegmentedIndexTest, QueryMergesAcrossSegments) {
  SegmentedIndex index;
  index.Insert(1, 10, 1.0, 1);
  index.Insert(1, 11, 2.0, 2);
  index.SealActiveSegment();
  index.Insert(1, 12, 3.0, 3);
  index.Insert(1, 13, 4.0, 4);
  EXPECT_EQ(index.NumSegments(), 2u);
  EXPECT_EQ(index.EntrySize(1), 4u);

  std::vector<MicroblogId> out;
  EXPECT_EQ(index.Query(1, 3, &out), 3u);
  EXPECT_EQ(out, (std::vector<MicroblogId>{13, 12, 11}));
}

TEST(SegmentedIndexTest, QueryMergesInterleavedScores) {
  // Non-temporal ranking can interleave across segments.
  SegmentedIndex index;
  index.Insert(1, 10, 5.0, 1);
  index.Insert(1, 11, 1.0, 1);
  index.SealActiveSegment();
  index.Insert(1, 12, 3.0, 2);
  std::vector<MicroblogId> out;
  index.Query(1, 10, &out);
  EXPECT_EQ(out, (std::vector<MicroblogId>{10, 12, 11}));
}

TEST(SegmentedIndexTest, FlushOldestReportsEveryPosting) {
  SegmentedIndex index;
  index.Insert(1, 10, 1.0, 1);
  index.Insert(2, 10, 1.0, 1);
  index.Insert(2, 11, 2.0, 2);
  index.SealActiveSegment();
  index.Insert(1, 12, 3.0, 3);

  std::map<TermId, std::vector<MicroblogId>> removed;
  const size_t freed = index.FlushOldestSegment(
      [&](TermId term, const Posting& p) { removed[term].push_back(p.id); });
  EXPECT_GT(freed, 0u);
  EXPECT_EQ(removed[1], (std::vector<MicroblogId>{10}));
  EXPECT_EQ(removed[2].size(), 2u);
  // Newer segment unaffected.
  EXPECT_EQ(index.EntrySize(1), 1u);
  EXPECT_EQ(index.EntrySize(2), 0u);
}

TEST(SegmentedIndexTest, FlushLastSegmentLeavesFreshActive) {
  SegmentedIndex index;
  index.Insert(1, 10, 1.0, 1);
  size_t reported = 0;
  index.FlushOldestSegment([&](TermId, const Posting&) { ++reported; });
  EXPECT_EQ(reported, 1u);
  EXPECT_EQ(index.NumSegments(), 1u);
  EXPECT_EQ(index.EntrySize(1), 0u);
  // Still usable.
  index.Insert(5, 50, 1.0, 1);
  EXPECT_EQ(index.EntrySize(5), 1u);
}

TEST(SegmentedIndexTest, TermsWithAtLeastAggregatesSegments) {
  SegmentedIndex index;
  // Term 1: 2 postings in old segment + 2 in new = 4 total.
  index.Insert(1, 10, 1.0, 1);
  index.Insert(1, 11, 2.0, 1);
  index.SealActiveSegment();
  index.Insert(1, 12, 3.0, 2);
  index.Insert(1, 13, 4.0, 2);
  index.Insert(2, 14, 5.0, 2);
  EXPECT_EQ(index.NumTermsWithAtLeast(4), 1u);
  EXPECT_EQ(index.NumTermsWithAtLeast(1), 2u);
  EXPECT_EQ(index.NumTerms(), 2u);
  EXPECT_EQ(index.TotalPostings(), 5u);
}

TEST(SegmentedIndexTest, MemoryChargedToTracker) {
  MemoryTracker tracker(1 << 20);
  SegmentedIndex index(&tracker);
  index.Insert(1, 10, 1.0, 1);
  EXPECT_GT(tracker.ComponentUsed(MemoryComponent::kIndex), 0u);
  EXPECT_EQ(index.MemoryBytes(),
            tracker.ComponentUsed(MemoryComponent::kIndex));
  index.FlushOldestSegment([](TermId, const Posting&) {});
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kIndex), 0u);
}

TEST(SegmentedIndexTest, ManySegmentsFlushInOrder) {
  SegmentedIndex index;
  for (int seg = 0; seg < 5; ++seg) {
    index.Insert(100 + seg, static_cast<MicroblogId>(seg),
                 static_cast<double>(seg), seg);
    index.SealActiveSegment();
  }
  EXPECT_EQ(index.NumSegments(), 6u);
  // Oldest-first: segment holding term 100 goes first.
  std::vector<TermId> flushed_terms;
  index.FlushOldestSegment(
      [&](TermId term, const Posting&) { flushed_terms.push_back(term); });
  EXPECT_EQ(flushed_terms, (std::vector<TermId>{100}));
  index.FlushOldestSegment(
      [&](TermId term, const Posting&) { flushed_terms.push_back(term); });
  EXPECT_EQ(flushed_terms, (std::vector<TermId>{100, 101}));
}

}  // namespace
}  // namespace kflush
