// 1000-seed differential property test: PostingList (slab-backed
// structure-of-arrays storage, charged-prefix bookkeeping) against a
// deque-based reference that replicates the pre-slab semantics. Every
// mutator runs under a random schedule of ks, predicates, and score
// patterns, and after every operation the test checks
//
//   * structural equality (ids and scores, position by position),
//   * charged() == min(k of the last mutation, size()),
//   * the net effect of the charge/uncharge callback stream: each id's
//     charge count stays in {0, 1} and the charged set is exactly the ids
//     of the first charged() positions — i.e. callbacks report every
//     transition exactly once, under any interleaving of inserts, trims,
//     predicate removals, id removals, and k changes.
//
// This is the test that licenses swapping the storage engine under the
// index: any deviation from the historical semantics (tie order, trim
// boundaries, charge transitions) shows up as a seed + operation trace.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <vector>

#include "index/posting_list.h"
#include "util/random.h"

namespace kflush {
namespace {

/// Pre-slab reference: a deque kept in descending (score, arrival) order
/// under the same insert rule PostingList documents.
class DequeModel {
 public:
  void Insert(MicroblogId id, double score) {
    if (items_.empty() || score >= items_.front().score) {
      items_.push_front({id, score});
      return;
    }
    auto it = std::upper_bound(
        items_.begin(), items_.end(), score,
        [](double s, const Posting& p) { return s >= p.score; });
    items_.insert(it, {id, score});
  }

  /// Returns ids trimmed (positions >= k matching `pred`), in position
  /// order.
  template <typename Pred>
  std::vector<MicroblogId> TrimBeyondK(size_t k, const Pred& pred) {
    std::vector<MicroblogId> trimmed;
    std::deque<Posting> kept;
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i >= k && pred(items_[i].id)) {
        trimmed.push_back(items_[i].id);
      } else {
        kept.push_back(items_[i]);
      }
    }
    items_ = std::move(kept);
    return trimmed;
  }

  template <typename Pred>
  std::vector<MicroblogId> RemoveIf(const Pred& pred) {
    std::vector<MicroblogId> removed;
    std::deque<Posting> kept;
    for (const Posting& p : items_) {
      if (pred(p.id)) {
        removed.push_back(p.id);
      } else {
        kept.push_back(p);
      }
    }
    items_ = std::move(kept);
    return removed;
  }

  bool Remove(MicroblogId id) {
    for (size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].id == id) {
        items_.erase(items_.begin() + static_cast<ptrdiff_t>(i));
        return true;
      }
    }
    return false;
  }

  const std::deque<Posting>& items() const { return items_; }

 private:
  std::deque<Posting> items_;
};

/// Net-effect observer over the charge/uncharge callback stream.
class ChargeLedger {
 public:
  TopKChargeFn Charge() {
    return [this](MicroblogId id) {
      const int count = ++counts_[id];
      ASSERT_EQ(count, 1) << "double charge on id " << id;
    };
  }
  TopKChargeFn Uncharge() {
    return [this](MicroblogId id) {
      const int count = --counts_[id];
      ASSERT_EQ(count, 0) << "uncharge without charge on id " << id;
    };
  }
  /// Uncharge reported out-of-band (RemoveIf/Remove `was_charged`).
  void DropCharge(MicroblogId id) {
    const int count = --counts_[id];
    ASSERT_EQ(count, 0) << "was_charged on uncharged id " << id;
  }

  std::set<MicroblogId> ChargedIds() const {
    std::set<MicroblogId> ids;
    for (const auto& [id, count] : counts_) {
      if (count != 0) ids.insert(id);
    }
    return ids;
  }

 private:
  std::map<MicroblogId, int> counts_;
};

void ExpectEquivalent(const PostingList& list, const DequeModel& model,
                      size_t k, const ChargeLedger& ledger) {
  ASSERT_EQ(list.size(), model.items().size());
  for (size_t i = 0; i < model.items().size(); ++i) {
    ASSERT_EQ(list.at(i).id, model.items()[i].id) << "position " << i;
    ASSERT_DOUBLE_EQ(list.at(i).score, model.items()[i].score)
        << "position " << i;
  }
  // Charged prefix re-aligns to min(k, size) on every mutation.
  ASSERT_EQ(list.charged(), std::min(k, list.size()));
  // The callback stream's net effect is exactly the prefix membership.
  std::set<MicroblogId> expect;
  for (size_t i = 0; i < list.charged(); ++i) expect.insert(list.at(i).id);
  ASSERT_EQ(ledger.ChargedIds(), expect);
}

TEST(PostingListDifferentialTest, ThousandSeedsMatchDequeReference) {
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    Rng rng(seed * 2654435761u + 1);
    SlabPool pool;
    PostingList list(&pool);
    DequeModel model;
    ChargeLedger ledger;
    const TopKChargeFn on_charge = ledger.Charge();
    const TopKChargeFn on_uncharge = ledger.Uncharge();

    size_t k = rng.Uniform(8);
    MicroblogId next_id = 1;
    std::vector<MicroblogId> live;
    double clock = 0;

    for (int op = 0; op < 220; ++op) {
      // Occasionally change k mid-stream (the SetK churn that motivates
      // charged-prefix bookkeeping) and re-align via Rebalance.
      if (rng.Bernoulli(0.08)) {
        k = rng.Uniform(16);
        list.Rebalance(k, on_charge, on_uncharge);
      }
      const uint64_t action = rng.Uniform(100);
      if (action < 55) {
        // Insert: mostly increasing scores, with duplicates and stale
        // scores mixed in.
        clock += 1;
        double score = clock;
        if (rng.Bernoulli(0.15)) score = rng.Uniform(static_cast<uint64_t>(clock) + 1);
        if (rng.Bernoulli(0.1) && !live.empty()) {
          // Exact duplicate of an existing score: tie-order coverage.
          score = model.items()[rng.Uniform(model.items().size())].score;
        }
        list.Insert(next_id, score, k, on_charge, on_uncharge);
        model.Insert(next_id, score);
        live.push_back(next_id);
        ++next_id;
      } else if (action < 70) {
        // TrimBeyondK, half the time with a predicate.
        const size_t trim_k = rng.Uniform(12);
        const bool all = rng.Bernoulli(0.5);
        auto pred = [&](MicroblogId id) { return all || id % 3 == 0; };
        std::vector<Posting> out;
        list.TrimBeyondK(
            trim_k, all ? std::function<bool(MicroblogId)>() : pred, &out,
            on_charge, on_uncharge);
        std::vector<MicroblogId> want = model.TrimBeyondK(trim_k, pred);
        // The real list walks its tail back to front, so trimmed postings
        // come out worst-ranked first.
        std::reverse(want.begin(), want.end());
        ASSERT_EQ(out.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
          ASSERT_EQ(out[i].id, want[i]) << "trim order, position " << i;
        }
        for (MicroblogId id : want) {
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
        k = trim_k;
      } else if (action < 80) {
        // RemoveIf with a random residue predicate (flush eviction shape).
        const uint64_t residue = rng.Uniform(4);
        auto pred = [&](MicroblogId id) { return id % 4 == residue; };
        std::vector<MicroblogId> got;
        list.RemoveIf(
            k, pred,
            [&](const Posting& p, bool was_charged) {
              got.push_back(p.id);
              if (was_charged) ledger.DropCharge(p.id);
            },
            on_charge, on_uncharge);
        ASSERT_EQ(got, model.RemoveIf(pred));
        for (MicroblogId id : got) {
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
      } else if (action < 92 && !live.empty()) {
        // Remove one id (present 90% of the time).
        MicroblogId id;
        if (rng.Bernoulli(0.9)) {
          id = live[rng.Uniform(live.size())];
        } else {
          id = 1'000'000 + rng.Uniform(100);
        }
        Posting removed;
        bool was_charged = false;
        const bool a =
            list.Remove(id, k, &removed, &was_charged, on_charge, on_uncharge);
        const bool b = model.Remove(id);
        ASSERT_EQ(a, b);
        if (a) {
          ASSERT_EQ(removed.id, id);
          if (was_charged) ledger.DropCharge(id);
          live.erase(std::remove(live.begin(), live.end(), id), live.end());
        }
      } else {
        // Query-side checks ride along: TopIds and membership.
        const size_t limit = rng.Uniform(10) + 1;
        std::vector<MicroblogId> top;
        list.TopIds(limit, &top);
        const size_t want_n = std::min(limit, model.items().size());
        ASSERT_EQ(top.size(), want_n);
        for (size_t i = 0; i < want_n; ++i) {
          ASSERT_EQ(top[i], model.items()[i].id);
        }
        if (!live.empty()) {
          ASSERT_TRUE(list.Contains(live[rng.Uniform(live.size())]));
        }
        ASSERT_FALSE(list.Contains(5'000'000));
        continue;  // no mutation: skip the k-sensitive prefix check below
      }
      ExpectEquivalent(list, model, k, ledger);
    }
    ExpectEquivalent(list, model, k, ledger);
  }
}

}  // namespace
}  // namespace kflush
