#include "index/posting_list.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace kflush {
namespace {

std::vector<MicroblogId> Ids(const PostingList& list) {
  std::vector<MicroblogId> ids;
  list.TopIds(list.size(), &ids);
  return ids;
}

bool IsSortedDescending(const PostingList& list) {
  for (size_t i = 1; i < list.size(); ++i) {
    if (list.at(i - 1).score < list.at(i).score) return false;
  }
  return true;
}

TEST(PostingListTest, InsertAtHeadForIncreasingScores) {
  PostingList list;
  for (MicroblogId id = 1; id <= 5; ++id) {
    auto res = list.Insert(id, static_cast<double>(id));
    EXPECT_EQ(res.insert_pos, 0u);
    EXPECT_EQ(res.size_after, id);
  }
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{5, 4, 3, 2, 1}));
}

TEST(PostingListTest, MidListInsertKeepsOrder) {
  PostingList list;
  list.Insert(1, 10.0);
  list.Insert(2, 30.0);
  auto res = list.Insert(3, 20.0);
  EXPECT_EQ(res.insert_pos, 1u);
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{2, 3, 1}));
}

TEST(PostingListTest, EqualScoresNewestFirstViaFastPath) {
  PostingList list;
  list.Insert(1, 5.0);
  auto res = list.Insert(2, 5.0);
  EXPECT_EQ(res.insert_pos, 0u);
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{2, 1}));
}

TEST(PostingListTest, RandomInsertsStaySorted) {
  Rng rng(99);
  PostingList list;
  for (MicroblogId id = 0; id < 500; ++id) {
    list.Insert(id, rng.NextDouble() * 100.0);
    ASSERT_TRUE(IsSortedDescending(list));
  }
  EXPECT_EQ(list.size(), 500u);
}

TEST(PostingListTest, TopIdsRespectsLimit) {
  PostingList list;
  for (MicroblogId id = 1; id <= 10; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  std::vector<MicroblogId> out;
  EXPECT_EQ(list.TopIds(3, &out), 3u);
  EXPECT_EQ(out, (std::vector<MicroblogId>{10, 9, 8}));
  out.clear();
  EXPECT_EQ(list.TopIds(100, &out), 10u);
}

TEST(PostingListTest, TrimBeyondKRemovesTail) {
  PostingList list;
  for (MicroblogId id = 1; id <= 10; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  std::vector<Posting> trimmed;
  EXPECT_EQ(list.TrimBeyondK(4, nullptr, &trimmed), 6u);
  EXPECT_EQ(list.size(), 4u);
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{10, 9, 8, 7}));
  // Trimmed ids are the tail (ids 6..1), each exactly once.
  EXPECT_EQ(trimmed.size(), 6u);
  for (const Posting& p : trimmed) {
    EXPECT_LE(p.id, 6u);
  }
}

TEST(PostingListTest, TrimNoopWhenAtOrBelowK) {
  PostingList list;
  list.Insert(1, 1.0);
  list.Insert(2, 2.0);
  std::vector<Posting> trimmed;
  EXPECT_EQ(list.TrimBeyondK(2, nullptr, &trimmed), 0u);
  EXPECT_EQ(list.TrimBeyondK(5, nullptr, &trimmed), 0u);
  EXPECT_EQ(list.size(), 2u);
}

TEST(PostingListTest, TrimWithFilterKeepsProtectedPostings) {
  PostingList list;
  for (MicroblogId id = 1; id <= 8; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  // Protect even ids from trimming.
  std::vector<Posting> trimmed;
  const size_t n = list.TrimBeyondK(
      3, [](MicroblogId id) { return id % 2 == 1; }, &trimmed);
  EXPECT_EQ(n, 3u);  // ids 5, 3, 1 trimmed; 4, 2 protected
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{8, 7, 6, 4, 2}));
  // Top-3 positions untouched.
  EXPECT_TRUE(list.IsInTopK(8, 3));
  EXPECT_TRUE(list.IsInTopK(6, 3));
  EXPECT_FALSE(list.IsInTopK(4, 3));
}

TEST(PostingListTest, TrimFilterKeepingEverythingLeavesListIntact) {
  PostingList list;
  for (MicroblogId id = 1; id <= 6; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  std::vector<Posting> trimmed;
  EXPECT_EQ(list.TrimBeyondK(2, [](MicroblogId) { return false; }, &trimmed),
            0u);
  EXPECT_EQ(list.size(), 6u);
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{6, 5, 4, 3, 2, 1}));
}

TEST(PostingListTest, RemoveIfReportsChargedMembership) {
  PostingList list;
  for (MicroblogId id = 1; id <= 6; ++id) {
    list.Insert(id, static_cast<double>(id), /*k=*/3);
  }
  EXPECT_EQ(list.charged(), 3u);
  std::vector<std::pair<MicroblogId, bool>> removed;
  const size_t n = list.RemoveIf(
      3, nullptr, [&](const Posting& p, bool charged) {
        removed.push_back({p.id, charged});
      });
  EXPECT_EQ(n, 6u);
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.charged(), 0u);
  // ids 6,5,4 held the charged top-3 positions; 3,2,1 beyond.
  for (const auto& [id, charged] : removed) {
    EXPECT_EQ(charged, id >= 4) << "id=" << id;
  }
}

TEST(PostingListTest, ChargedPrefixFollowsInsertsAndKChanges) {
  PostingList list;
  std::vector<MicroblogId> charges, uncharges;
  auto on_charge = [&](MicroblogId id) { charges.push_back(id); };
  auto on_uncharge = [&](MicroblogId id) { uncharges.push_back(id); };

  // Growing to k: every insert is charged, none uncharged.
  for (MicroblogId id = 1; id <= 3; ++id) {
    list.Insert(id, static_cast<double>(id), /*k=*/3, on_charge, on_uncharge);
  }
  EXPECT_EQ(charges, (std::vector<MicroblogId>{1, 2, 3}));
  EXPECT_TRUE(uncharges.empty());
  EXPECT_EQ(list.charged(), 3u);

  // A best-ranked insert past k charges itself and evicts the posting that
  // fell to position k.
  charges.clear();
  list.Insert(4, 4.0, /*k=*/3, on_charge, on_uncharge);
  EXPECT_EQ(charges, (std::vector<MicroblogId>{4}));
  EXPECT_EQ(uncharges, (std::vector<MicroblogId>{1}));

  // A beyond-k insert changes nothing.
  charges.clear();
  uncharges.clear();
  list.Insert(5, 0.5, /*k=*/3, on_charge, on_uncharge);
  EXPECT_TRUE(charges.empty());
  EXPECT_TRUE(uncharges.empty());

  // k shrinks: Rebalance revokes the demoted postings' charges...
  list.Rebalance(1, on_charge, on_uncharge);
  EXPECT_EQ(list.charged(), 1u);
  EXPECT_EQ(uncharges, (std::vector<MicroblogId>{2, 3}));
  // ...and k growing back re-charges them.
  uncharges.clear();
  list.Rebalance(4, on_charge, on_uncharge);
  EXPECT_EQ(list.charged(), 4u);
  // List is [4, 3, 2, 1, 5] by score; 4 kept its charge, 3/2/1 regain one.
  EXPECT_EQ(charges, (std::vector<MicroblogId>{3, 2, 1}));
  EXPECT_TRUE(uncharges.empty());
}

TEST(PostingListTest, TrimRevokesStaleChargesBeforeFilter) {
  PostingList list;
  for (MicroblogId id = 1; id <= 6; ++id) {
    list.Insert(id, static_cast<double>(id), /*k=*/5);
  }
  EXPECT_EQ(list.charged(), 5u);
  // k shrank to 2 since the charges were granted: trimming must revoke
  // the stale charges on trimmed AND kept tail postings, then re-align.
  std::vector<MicroblogId> uncharges;
  std::vector<Posting> trimmed;
  const size_t n = list.TrimBeyondK(
      2, [](MicroblogId id) { return id % 2 == 1; }, &trimmed, {},
      [&](MicroblogId id) { uncharges.push_back(id); });
  EXPECT_EQ(n, 2u);  // 3 and 1 trimmed; 4 and 2 kept beyond k
  EXPECT_EQ(list.charged(), 2u);
  // Stale charges on 2 (kept), 3 (trimmed), 4 (kept) revoked, back first.
  EXPECT_EQ(uncharges, (std::vector<MicroblogId>{2, 3, 4}));
}

TEST(PostingListTest, RemoveIfPartial) {
  PostingList list;
  for (MicroblogId id = 1; id <= 6; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  const size_t n = list.RemoveIf(
      2, [](MicroblogId id) { return id % 2 == 0; }, nullptr);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(Ids(list), (std::vector<MicroblogId>{5, 3, 1}));
}

TEST(PostingListTest, RemoveSingleId) {
  PostingList list;
  for (MicroblogId id = 1; id <= 5; ++id) {
    list.Insert(id, static_cast<double>(id), /*k=*/2);
  }
  Posting removed;
  bool was_charged = false;
  EXPECT_TRUE(list.Remove(5, 2, &removed, &was_charged));
  EXPECT_EQ(removed.id, 5u);
  EXPECT_DOUBLE_EQ(removed.score, 5.0);
  EXPECT_TRUE(was_charged);
  EXPECT_TRUE(list.Remove(1, 2, &removed, &was_charged));
  EXPECT_FALSE(was_charged);
  EXPECT_FALSE(list.Remove(42, 2, nullptr, nullptr));
  EXPECT_EQ(list.size(), 3u);
}

TEST(PostingListTest, ContainsAndIsInTopK) {
  PostingList list;
  for (MicroblogId id = 1; id <= 5; ++id) {
    list.Insert(id, static_cast<double>(id));
  }
  EXPECT_TRUE(list.Contains(3));
  EXPECT_FALSE(list.Contains(9));
  EXPECT_TRUE(list.IsInTopK(5, 1));
  EXPECT_FALSE(list.IsInTopK(4, 1));
  EXPECT_TRUE(list.IsInTopK(4, 2));
}

// Property sweep: after TrimBeyondK(k) with no filter, size == min(size, k)
// and survivors are exactly the k best-scored postings.
class TrimPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TrimPropertyTest, TrimKeepsExactlyTopK) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<uint64_t>(n * 1000 + k));
  PostingList list;
  std::vector<std::pair<double, MicroblogId>> all;
  for (int i = 0; i < n; ++i) {
    const double score = rng.NextDouble() * 1e6;
    list.Insert(static_cast<MicroblogId>(i), score);
    all.push_back({score, static_cast<MicroblogId>(i)});
  }
  std::vector<Posting> trimmed;
  list.TrimBeyondK(static_cast<size_t>(k), nullptr, &trimmed);
  const size_t expect_size = std::min<size_t>(n, k);
  ASSERT_EQ(list.size(), expect_size);
  ASSERT_EQ(trimmed.size(), static_cast<size_t>(n) - expect_size);
  // Survivors = top-k by score.
  std::sort(all.begin(), all.end(), std::greater<>());
  std::vector<MicroblogId> expect_ids;
  for (size_t i = 0; i < expect_size; ++i) expect_ids.push_back(all[i].second);
  std::vector<MicroblogId> got = Ids(list);
  std::sort(got.begin(), got.end());
  std::sort(expect_ids.begin(), expect_ids.end());
  EXPECT_EQ(got, expect_ids);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, TrimPropertyTest,
    ::testing::Combine(::testing::Values(0, 1, 5, 20, 100, 1000),
                       ::testing::Values(1, 5, 20, 100)));

}  // namespace
}  // namespace kflush
