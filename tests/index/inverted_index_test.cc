#include "index/inverted_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace kflush {
namespace {

TEST(InvertedIndexTest, InsertCreatesEntryAndCharges) {
  MemoryTracker tracker(1 << 20);
  InvertedIndex index(&tracker);
  auto res = index.Insert(7, 1, 100.0, 50, /*k=*/3);
  EXPECT_EQ(res.size_after, 1u);
  EXPECT_EQ(res.insert_pos, 0u);
  EXPECT_EQ(index.NumEntries(), 1u);
  EXPECT_EQ(index.TotalPostings(), 1u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kIndex),
            InvertedIndex::kBytesPerEntry + PostingList::kBytesPerPosting);
}

TEST(InvertedIndexTest, QueryReturnsBestRankedAndStampsTime) {
  InvertedIndex index;
  for (MicroblogId id = 1; id <= 5; ++id) {
    index.Insert(7, id, static_cast<double>(id), id * 10, 0);
  }
  std::vector<MicroblogId> out;
  EXPECT_EQ(index.Query(7, 3, /*now=*/999, &out), 3u);
  EXPECT_EQ(out, (std::vector<MicroblogId>{5, 4, 3}));
  EntryMeta meta;
  ASSERT_TRUE(index.GetEntryMeta(7, &meta));
  EXPECT_EQ(meta.last_query, 999u);
  EXPECT_EQ(meta.last_arrival, 50u);
}

TEST(InvertedIndexTest, PeekDoesNotStampQueryTime) {
  InvertedIndex index;
  index.Insert(7, 1, 1.0, 10, 0);
  std::vector<MicroblogId> out;
  index.Peek(7, 1, &out);
  EntryMeta meta;
  ASSERT_TRUE(index.GetEntryMeta(7, &meta));
  EXPECT_EQ(meta.last_query, 0u);
}

TEST(InvertedIndexTest, QueryOnMissingTermIsEmpty) {
  InvertedIndex index;
  std::vector<MicroblogId> out;
  EXPECT_EQ(index.Query(404, 10, 1, &out), 0u);
  EXPECT_TRUE(out.empty());
}

TEST(InvertedIndexTest, ChargeTransitionsOnInsert) {
  InvertedIndex index;
  const size_t k = 3;
  std::vector<MicroblogId> charges, uncharges;
  auto on_charge = [&](MicroblogId id) { charges.push_back(id); };
  auto on_uncharge = [&](MicroblogId id) { uncharges.push_back(id); };
  // Fill to exactly k: every insert charged, no displacement.
  for (MicroblogId id = 1; id <= 3; ++id) {
    index.Insert(1, id, static_cast<double>(id), 1, k, on_charge, on_uncharge);
  }
  EXPECT_EQ(charges, (std::vector<MicroblogId>{1, 2, 3}));
  EXPECT_TRUE(uncharges.empty());
  // The 4th (best-ranked) insert displaces the now-(k+1)-th: id 1.
  charges.clear();
  auto res = index.Insert(1, 4, 4.0, 2, k, on_charge, on_uncharge);
  EXPECT_EQ(res.size_after, 4u);
  EXPECT_EQ(charges, (std::vector<MicroblogId>{4}));
  EXPECT_EQ(uncharges, (std::vector<MicroblogId>{1}));
  // Insert beyond top-k: no transitions.
  charges.clear();
  uncharges.clear();
  auto res2 = index.Insert(1, 5, 0.5, 3, k, on_charge, on_uncharge);
  EXPECT_EQ(res2.insert_pos, 4u);
  EXPECT_TRUE(charges.empty());
  EXPECT_TRUE(uncharges.empty());
}

TEST(InvertedIndexTest, TrimBeyondKReleasesBytes) {
  MemoryTracker tracker(1 << 20);
  InvertedIndex index(&tracker);
  for (MicroblogId id = 1; id <= 10; ++id) {
    index.Insert(1, id, static_cast<double>(id), 1, 0);
  }
  const size_t before = tracker.ComponentUsed(MemoryComponent::kIndex);
  std::vector<Posting> trimmed;
  EXPECT_EQ(index.TrimBeyondK(1, 4, nullptr, &trimmed), 6u);
  EXPECT_EQ(before - tracker.ComponentUsed(MemoryComponent::kIndex),
            6 * PostingList::kBytesPerPosting);
  EXPECT_EQ(index.EntrySize(1), 4u);
}

TEST(InvertedIndexTest, RemoveMatchingDeletesEmptyEntry) {
  MemoryTracker tracker(1 << 20);
  InvertedIndex index(&tracker);
  index.Insert(1, 1, 1.0, 1, 0);
  index.Insert(1, 2, 2.0, 1, 0);
  size_t removed = index.RemoveMatching(1, 1, nullptr, nullptr);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(index.NumEntries(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kIndex), 0u);
}

TEST(InvertedIndexTest, RemoveMatchingPartialKeepsEntry) {
  InvertedIndex index;
  for (MicroblogId id = 1; id <= 4; ++id) {
    index.Insert(1, id, static_cast<double>(id), 1, 0);
  }
  size_t removed = index.RemoveMatching(
      1, 2, [](MicroblogId id) { return id % 2 == 0; }, nullptr);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(index.EntrySize(1), 2u);
  EXPECT_TRUE(index.ContainsId(1, 1));
  EXPECT_TRUE(index.ContainsId(1, 3));
}

TEST(InvertedIndexTest, RemoveIdReturnsPostingAndErasesEmptyEntry) {
  InvertedIndex index;
  index.Insert(3, 9, 42.0, 1, /*k=*/5);
  Posting removed;
  bool was_charged = false;
  EXPECT_TRUE(index.RemoveId(3, 9, 5, &removed, &was_charged));
  EXPECT_EQ(removed.id, 9u);
  EXPECT_DOUBLE_EQ(removed.score, 42.0);
  EXPECT_TRUE(was_charged);
  EXPECT_EQ(index.NumEntries(), 0u);
  EXPECT_FALSE(index.RemoveId(3, 9, 5, nullptr, nullptr));
}

TEST(InvertedIndexTest, ForEachEntryVisitsAll) {
  InvertedIndex index;
  for (TermId term = 0; term < 100; ++term) {
    index.Insert(term, term + 1, 1.0, term, 0);
  }
  std::set<TermId> seen;
  index.ForEachEntry([&](const EntryMeta& meta) {
    seen.insert(meta.term);
    EXPECT_EQ(meta.count, 1u);
  });
  EXPECT_EQ(seen.size(), 100u);
}

TEST(InvertedIndexTest, NumEntriesWithAtLeast) {
  InvertedIndex index;
  for (TermId term = 0; term < 10; ++term) {
    for (size_t i = 0; i <= term; ++i) {
      index.Insert(term, term * 100 + i, static_cast<double>(i), 1, 0);
    }
  }
  // term t has t+1 postings.
  EXPECT_EQ(index.NumEntriesWithAtLeast(1), 10u);
  EXPECT_EQ(index.NumEntriesWithAtLeast(5), 6u);
  EXPECT_EQ(index.NumEntriesWithAtLeast(10), 1u);
  EXPECT_EQ(index.NumEntriesWithAtLeast(11), 0u);
}

TEST(InvertedIndexTest, PeekPostingsReturnsScores) {
  InvertedIndex index;
  index.Insert(1, 10, 5.0, 1, 0);
  index.Insert(1, 11, 7.0, 1, 0);
  std::vector<Posting> postings;
  EXPECT_EQ(index.PeekPostings(1, 10, &postings), 2u);
  EXPECT_EQ(postings[0].id, 11u);
  EXPECT_DOUBLE_EQ(postings[0].score, 7.0);
}

TEST(InvertedIndexTest, ClearReleasesEverything) {
  MemoryTracker tracker(1 << 20);
  InvertedIndex index(&tracker);
  for (TermId t = 0; t < 50; ++t) {
    index.Insert(t, t, 1.0, 1, 0);
  }
  index.Clear();
  EXPECT_EQ(index.NumEntries(), 0u);
  EXPECT_EQ(index.TotalPostings(), 0u);
  EXPECT_EQ(tracker.ComponentUsed(MemoryComponent::kIndex), 0u);
}

TEST(InvertedIndexTest, ManyTermsAcrossShards) {
  InvertedIndex index;
  constexpr TermId kTerms = 10000;
  for (TermId t = 0; t < kTerms; ++t) {
    index.Insert(t, t, static_cast<double>(t), 1, 0);
  }
  EXPECT_EQ(index.NumEntries(), kTerms);
  EXPECT_EQ(index.TotalPostings(), kTerms);
  for (TermId t : {TermId{0}, TermId{137}, TermId{9999}}) {
    EXPECT_EQ(index.EntrySize(t), 1u);
  }
}

}  // namespace
}  // namespace kflush
