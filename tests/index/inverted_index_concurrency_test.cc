// Concurrency fuzz for the sharded inverted index: parallel inserters,
// queriers, and a trimmer thread on overlapping terms; afterwards the
// index's internal counters must balance exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "index/inverted_index.h"
#include "util/random.h"

namespace kflush {
namespace {

TEST(InvertedIndexConcurrencyTest, ParallelInsertQueryTrim) {
  InvertedIndex index;
  constexpr int kInserters = 4;
  constexpr int kPerThread = 20000;
  constexpr TermId kTerms = 64;
  std::atomic<bool> stop{false};

  std::vector<std::thread> inserters;
  std::atomic<uint64_t> inserted{0};
  for (int t = 0; t < kInserters; ++t) {
    inserters.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kPerThread; ++i) {
        const MicroblogId id =
            static_cast<MicroblogId>(t) * kPerThread + static_cast<MicroblogId>(i) + 1;
        index.Insert(rng.Uniform(kTerms), id, static_cast<double>(id),
                     static_cast<Timestamp>(id), 20);
        inserted.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::thread querier([&] {
    Rng rng(99);
    std::vector<MicroblogId> out;
    while (!stop.load(std::memory_order_relaxed)) {
      out.clear();
      index.Query(rng.Uniform(kTerms), 20, 1, &out);
      // Returned lists must be score-descending (score == id here).
      for (size_t i = 1; i < out.size(); ++i) {
        ASSERT_GT(out[i - 1], out[i]);
      }
    }
  });

  std::atomic<uint64_t> trimmed_total{0};
  std::thread trimmer([&] {
    Rng rng(7);
    std::vector<Posting> trimmed;
    while (!stop.load(std::memory_order_relaxed)) {
      trimmed.clear();
      trimmed_total.fetch_add(
          index.TrimBeyondK(rng.Uniform(kTerms), 20, nullptr, &trimmed),
          std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  for (auto& t : inserters) t.join();
  stop.store(true);
  querier.join();
  trimmer.join();

  // Exact balance: inserted == still-indexed + trimmed.
  EXPECT_EQ(inserted.load(), index.TotalPostings() + trimmed_total.load());
  // Memory accounting balances with structure counts.
  EXPECT_EQ(index.MemoryBytes(),
            index.NumEntries() * InvertedIndex::kBytesPerEntry +
                index.TotalPostings() * PostingList::kBytesPerPosting);
  // Every entry is within k of the last trim or grew afterwards; either
  // way the per-term invariant "entry size == sum of survivors" holds.
  size_t recount = 0;
  index.ForEachEntry([&](const EntryMeta& meta) { recount += meta.count; });
  EXPECT_EQ(recount, index.TotalPostings());
}

TEST(InvertedIndexConcurrencyTest, ParallelRemoveEntries) {
  InvertedIndex index;
  constexpr TermId kTerms = 256;
  for (TermId t = 0; t < kTerms; ++t) {
    for (MicroblogId id = 0; id < 10; ++id) {
      index.Insert(t, t * 100 + id, static_cast<double>(id), 1, 0);
    }
  }
  std::atomic<uint64_t> removed{0};
  std::vector<std::thread> removers;
  for (int t = 0; t < 4; ++t) {
    removers.emplace_back([&, t] {
      for (TermId term = static_cast<TermId>(t); term < kTerms; term += 4) {
        removed.fetch_add(
            index.RemoveMatching(term, 0, nullptr, nullptr),
            std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : removers) t.join();
  EXPECT_EQ(removed.load(), kTerms * 10);
  EXPECT_EQ(index.NumEntries(), 0u);
  EXPECT_EQ(index.TotalPostings(), 0u);
  EXPECT_EQ(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace kflush
