// The shared boundary-tile membership predicate (index/spatial_grid.h
// AreaContains): unit coverage of the inclusive-edge semantics, plus the
// cross-surface contract — the one-shot SearchArea answer and an area
// subscription's standing result must both be exactly "the records
// AreaContains admits", so a record can never appear in one surface and
// be missed by the other.

#include "index/spatial_grid.h"

#include <algorithm>
#include <vector>

#include "core/query_engine.h"
#include "core/store.h"
#include "gtest/gtest.h"
#include "sub/subscription_manager.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeGeoBlog;
using testing_util::SmallStoreOptions;

TEST(AreaContains, InclusiveOnAllEdgesAndCorners) {
  BoundingBox box{10.0, 20.0, 11.0, 21.0};
  // Interior.
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(1, 1, 10.5, 20.5)));
  // All four edges and all four corners are inside (inclusive).
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(2, 1, 10.0, 20.5)));
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(3, 1, 11.0, 20.5)));
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(4, 1, 10.5, 20.0)));
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(5, 1, 10.5, 21.0)));
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(6, 1, 10.0, 20.0)));
  EXPECT_TRUE(AreaContains(box, MakeGeoBlog(7, 1, 11.0, 21.0)));
  // Just outside each edge.
  EXPECT_FALSE(AreaContains(box, MakeGeoBlog(8, 1, 9.9999, 20.5)));
  EXPECT_FALSE(AreaContains(box, MakeGeoBlog(9, 1, 11.0001, 20.5)));
  EXPECT_FALSE(AreaContains(box, MakeGeoBlog(10, 1, 10.5, 19.9999)));
  EXPECT_FALSE(AreaContains(box, MakeGeoBlog(11, 1, 10.5, 21.0001)));
}

TEST(AreaContains, RejectsRecordsWithoutLocation) {
  BoundingBox everything{-90.0, -180.0, 90.0, 180.0};
  Microblog blog = testing_util::MakeBlog(1, 1, {7});
  ASSERT_FALSE(blog.has_location);
  EXPECT_FALSE(AreaContains(everything, blog));
}

TEST(AreaContains, DegenerateBoxMatchesOnlyTheExactPoint) {
  BoundingBox point{10.0, 20.0, 10.0, 20.0};
  EXPECT_TRUE(AreaContains(point, MakeGeoBlog(1, 1, 10.0, 20.0)));
  EXPECT_FALSE(AreaContains(point, MakeGeoBlog(2, 1, 10.0, 20.0001)));
}

// The cross-surface contract: seed a spatial store with records straddling
// tile boundaries around a box, then require that (a) the one-shot
// SearchArea answer is exactly the AreaContains-filtered brute-force top-k
// and (b) an area subscription's standing result is the same set — both
// surfaces route through the one shared predicate.
TEST(AreaContains, OneShotAndSubscriptionAgreeWithBruteForce) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kFifo);
  opts.attribute = AttributeKind::kSpatial;
  MicroblogStore store(opts);
  QueryEngine engine(&store);

  const BoundingBox box{40.0, -74.0, 40.2, -73.8};
  std::vector<Microblog> kept;
  MicroblogId next_id = 1;
  // A lattice overshooting the box on every side: records land in boundary
  // tiles both inside and outside the box.
  for (int i = -3; i <= 13; ++i) {
    for (int j = -3; j <= 13; ++j) {
      const double lat = 40.0 + 0.02 * i;
      const double lon = -74.0 + 0.02 * j;
      Microblog blog = MakeGeoBlog(next_id, 1000 + next_id, lat, lon);
      ++next_id;
      kept.push_back(blog);
      ASSERT_TRUE(store.Insert(blog).ok());
    }
  }

  const uint32_t k = 12;
  std::vector<const Microblog*> expect;
  for (const Microblog& blog : kept) {
    if (AreaContains(box, blog)) expect.push_back(&blog);
  }
  const RankingFunction* ranking = store.ranking();
  std::sort(expect.begin(), expect.end(),
            [&](const Microblog* a, const Microblog* b) {
              return SubMemberBetter(ranking->Score(*a), a->id,
                                     ranking->Score(*b), b->id);
            });
  if (expect.size() > k) expect.resize(k);

  auto result = engine.SearchArea(box.min_lat, box.min_lon, box.max_lat,
                                  box.max_lon, k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->results.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(result->results[i].id, expect[i]->id) << "rank " << i;
    EXPECT_TRUE(AreaContains(box, result->results[i]));
  }

  auto subs = MakeSubscriptions(&store, &engine);
  SubscriptionSpec spec;
  spec.kind = SubKind::kArea;
  spec.k = k;
  spec.box = box;
  auto sub_id = subs->Subscribe(spec);
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();
  std::vector<SubMember> members;
  ASSERT_TRUE(subs->SnapshotMembers(*sub_id, &members));
  ASSERT_EQ(members.size(), expect.size());
  for (size_t i = 0; i < expect.size(); ++i) {
    EXPECT_EQ(members[i].id, expect[i]->id) << "rank " << i;
  }
}

}  // namespace
}  // namespace kflush
