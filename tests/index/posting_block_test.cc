// PostingBlock storage-engine tests: the inline<->slab transitions,
// head-offset push/recenter mechanics, shorter-side shifts, shrink
// hysteresis, and copy/move against a plain vector-of-pairs model.

#include "index/posting_block.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include "util/random.h"

namespace kflush {
namespace {

using Item = std::pair<uint64_t, double>;

void ExpectMatches(const PostingBlock& block, const std::deque<Item>& model) {
  ASSERT_EQ(block.size(), model.size());
  for (size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(block.id(i), model[i].first) << "pos " << i;
    ASSERT_EQ(block.score(i), model[i].second) << "pos " << i;
  }
  // The views must be contiguous and consistent with element accessors.
  const double* s = block.scores();
  const uint64_t* d = block.ids();
  for (size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(d[i], model[i].first);
    ASSERT_EQ(s[i], model[i].second);
  }
}

TEST(PostingBlockTest, StaysInlineUpToInlineCapacity) {
  PostingBlock block;
  for (size_t i = 0; i < PostingBlock::kInlineCapacity; ++i) {
    block.PushFront(i, static_cast<double>(i));
    EXPECT_TRUE(block.inlined());
    EXPECT_EQ(block.BlockBytes(), 0u);
  }
  block.PushFront(99, 99.0);
  EXPECT_FALSE(block.inlined());
  EXPECT_EQ(block.capacity(), PostingBlock::kFirstBlockCapacity);
  EXPECT_EQ(block.BlockBytes(), PostingBlock::kFirstBlockCapacity * 16);
  EXPECT_EQ(block.id(0), 99u);
  EXPECT_EQ(block.id(4), 0u);
}

TEST(PostingBlockTest, GrowthDoubles) {
  PostingBlock block;
  for (uint64_t i = 0; i < 100; ++i) block.PushBack(i, 0.0);
  // Geometric growth with centered reallocation: capacity stays within a
  // constant factor of the live size (no linear-in-pushes creep).
  EXPECT_GE(block.capacity(), 100u);
  EXPECT_LE(block.capacity(), 256u);
  EXPECT_EQ(block.size(), 100u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(block.id(i), i);
}

TEST(PostingBlockTest, ShrinkHysteresis) {
  PostingBlock block;
  for (uint64_t i = 0; i < 100; ++i) block.PushBack(i, static_cast<double>(i));
  const size_t grown = block.capacity();
  ASSERT_GE(grown, 100u);

  // Above quarter occupancy nothing shrinks (hysteresis).
  block.TruncateTo(grown / 4 + 1);
  block.MaybeShrink();
  EXPECT_EQ(block.capacity(), grown);

  // At 20/grown the block halves (possibly repeatedly).
  block.TruncateTo(20);
  block.MaybeShrink();
  EXPECT_LT(block.capacity(), grown);
  EXPECT_GE(block.capacity(), 20u);
  for (uint64_t i = 0; i < 20; ++i) EXPECT_EQ(block.id(i), i);

  // Down to a tiny list the storage returns inline.
  block.TruncateTo(2);
  block.MaybeShrink();
  EXPECT_TRUE(block.inlined());
  EXPECT_EQ(block.id(0), 0u);
  EXPECT_EQ(block.id(1), 1u);
}

TEST(PostingBlockTest, PooledBlocksRecycleThroughSlabPool) {
  SlabPool pool;
  {
    PostingBlock block(&pool);
    for (uint64_t i = 0; i < 1000; ++i) block.PushFront(i, 0.0);
  }  // destructor returns the block
  const size_t footprint = pool.FootprintBytes();
  EXPECT_GT(pool.FreeBlocks(), 0u);
  for (int round = 0; round < 50; ++round) {
    PostingBlock block(&pool);
    for (uint64_t i = 0; i < 1000; ++i) block.PushFront(i, 0.0);
  }
  // Same growth ladder each round -> fully served from the free lists.
  EXPECT_EQ(pool.FootprintBytes(), footprint);
}

TEST(PostingBlockTest, CopyAndMovePreserveContentAcrossPools) {
  SlabPool pool;
  PostingBlock a(&pool);
  for (uint64_t i = 0; i < 50; ++i) a.PushFront(i, static_cast<double>(i));

  PostingBlock b(a);  // copy
  ASSERT_EQ(b.size(), 50u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(b.id(i), a.id(i));

  PostingBlock c(std::move(a));  // move steals the block
  ASSERT_EQ(c.size(), 50u);
  EXPECT_EQ(c.id(0), 49u);

  PostingBlock d;
  d = c;  // copy-assign into an unpooled block
  ASSERT_EQ(d.size(), 50u);
  EXPECT_EQ(d.id(49), 0u);
}

TEST(PostingBlockTest, RandomOpsMatchDequeModel) {
  // Differential fuzz of the raw storage operations against std::deque.
  // Front-biased (the digestion distribution), with erases and inserts at
  // random positions exercising the shorter-side shift logic and the
  // recenter paths at both ends.
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE(seed);
    Rng rng(seed + 1);
    SlabPool pool;
    PostingBlock block(&pool);
    std::deque<Item> model;
    uint64_t next = 0;
    for (int op = 0; op < 1500; ++op) {
      const uint64_t action = rng.Uniform(100);
      const double score = static_cast<double>(rng.Uniform(1000));
      if (action < 55) {
        block.PushFront(next, score);
        model.emplace_front(next, score);
        ++next;
      } else if (action < 65) {
        block.PushBack(next, score);
        model.emplace_back(next, score);
        ++next;
      } else if (action < 75) {
        const size_t pos = rng.Uniform(model.size() + 1);
        block.InsertAt(pos, next, score);
        model.emplace(model.begin() + static_cast<ptrdiff_t>(pos), next,
                      score);
        ++next;
      } else if (action < 90 && !model.empty()) {
        const size_t pos = rng.Uniform(model.size());
        block.EraseAt(pos);
        model.erase(model.begin() + static_cast<ptrdiff_t>(pos));
      } else if (action < 95 && !model.empty()) {
        const size_t n = rng.Uniform(model.size() + 1);
        block.TruncateTo(n);
        model.resize(n);
        block.MaybeShrink();
      } else if (!model.empty()) {
        block.PopBack();
        model.pop_back();
      }
      if (op % 50 == 0) ExpectMatches(block, model);
    }
    ExpectMatches(block, model);
  }
}

}  // namespace
}  // namespace kflush
