#include "util/memory_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(MemoryTrackerTest, StartsEmpty) {
  MemoryTracker t(1000);
  EXPECT_EQ(t.used(), 0u);
  EXPECT_EQ(t.budget(), 1000u);
  EXPECT_FALSE(t.IsFull());
  EXPECT_FALSE(t.DataFull());
}

TEST(MemoryTrackerTest, ChargeAndRelease) {
  MemoryTracker t(1000);
  t.Charge(MemoryComponent::kRawStore, 300);
  t.Charge(MemoryComponent::kIndex, 200);
  EXPECT_EQ(t.used(), 500u);
  EXPECT_EQ(t.ComponentUsed(MemoryComponent::kRawStore), 300u);
  EXPECT_EQ(t.ComponentUsed(MemoryComponent::kIndex), 200u);
  t.Release(MemoryComponent::kRawStore, 100);
  EXPECT_EQ(t.used(), 400u);
  EXPECT_EQ(t.ComponentUsed(MemoryComponent::kRawStore), 200u);
}

TEST(MemoryTrackerTest, FullAtBudget) {
  MemoryTracker t(100);
  t.Charge(MemoryComponent::kRawStore, 99);
  EXPECT_FALSE(t.IsFull());
  t.Charge(MemoryComponent::kRawStore, 1);
  EXPECT_TRUE(t.IsFull());
  EXPECT_DOUBLE_EQ(t.Utilization(), 1.0);
}

TEST(MemoryTrackerTest, DataUsedExcludesOverheadComponents) {
  MemoryTracker t(1000);
  t.Charge(MemoryComponent::kRawStore, 100);
  t.Charge(MemoryComponent::kIndex, 50);
  t.Charge(MemoryComponent::kPolicyOverhead, 500);
  t.Charge(MemoryComponent::kFlushBuffer, 200);
  EXPECT_EQ(t.DataUsed(), 150u);
  EXPECT_FALSE(t.DataFull());
  EXPECT_EQ(t.used(), 850u);
}

TEST(MemoryTrackerTest, ToStringMentionsComponents) {
  MemoryTracker t(1000);
  t.Charge(MemoryComponent::kIndex, 10);
  const std::string s = t.ToString();
  EXPECT_NE(s.find("index=10"), std::string::npos);
  EXPECT_NE(s.find("raw_store=0"), std::string::npos);
}

TEST(MemoryTrackerTest, ConcurrentChargesBalance) {
  MemoryTracker t(1 << 30);
  constexpr int kThreads = 8;
  constexpr int kOps = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&t] {
      for (int j = 0; j < kOps; ++j) {
        t.Charge(MemoryComponent::kIndex, 16);
        t.Release(MemoryComponent::kIndex, 16);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.used(), 0u);
  EXPECT_EQ(t.ComponentUsed(MemoryComponent::kIndex), 0u);
}

}  // namespace
}  // namespace kflush
