#include "util/thread_util.h"

#include <gtest/gtest.h>

#include <numeric>
#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 50000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < kIncrements; ++j) {
        std::lock_guard<SpinLock> guard(lock);
        ++counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIncrements);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
}

TEST(BoundedQueueTest, CloseDrainsRemaining) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));  // closed: rejected
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());  // drained
}

TEST(BoundedQueueTest, BlocksWhenFullUntilPop) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(q.size(), 1u);  // producer blocked
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(BoundedQueueTest, ManyProducersOneConsumer) {
  BoundedQueue<int> q(64);
  constexpr int kProducers = 4;
  constexpr int kItems = 20000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q] {
      for (int i = 0; i < kItems; ++i) q.Push(1);
    });
  }
  long long sum = 0;
  std::thread consumer([&] {
    for (int i = 0; i < kProducers * kItems; ++i) {
      auto v = q.Pop();
      ASSERT_TRUE(v.has_value());
      sum += *v;
    }
  });
  for (auto& t : producers) t.join();
  consumer.join();
  EXPECT_EQ(sum, static_cast<long long>(kProducers) * kItems);
}

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    auto v = q.Pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 7);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.Push(7);
  consumer.join();
}

}  // namespace
}  // namespace kflush
