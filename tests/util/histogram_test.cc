#include "util/histogram.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.Percentile(50), 42u);
}

TEST(HistogramTest, ExactStatsForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MedianApproximation) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  const uint64_t p50 = h.Percentile(50);
  EXPECT_GT(p50, 40000u);
  EXPECT_LT(p50, 62000u);  // bucketed estimate: generous bound
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1);
  a.Record(3);
  b.Record(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.sum(), 104u);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a, empty;
  a.Record(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, HandlesLargeValues) {
  Histogram h;
  h.Record(1ULL << 50);
  h.Record(1ULL << 51);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1ULL << 51);
  EXPECT_GE(h.Percentile(100), h.min());
}

TEST(HistogramTest, ToStringHasFields) {
  Histogram h;
  h.Record(10);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace kflush
