#include "util/histogram.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace kflush {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.Percentile(50), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.Percentile(50), 42u);
}

TEST(HistogramTest, ExactStatsForSmallValues) {
  Histogram h;
  for (uint64_t v = 0; v < 16; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 15u);
  EXPECT_DOUBLE_EQ(h.mean(), 7.5);
}

TEST(HistogramTest, PercentilesAreMonotone) {
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  uint64_t prev = 0;
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    uint64_t v = h.Percentile(p);
    EXPECT_GE(v, prev) << "p=" << p;
    prev = v;
  }
}

TEST(HistogramTest, MedianApproximation) {
  Histogram h;
  for (uint64_t v = 1; v <= 100000; ++v) h.Record(v);
  const uint64_t p50 = h.Percentile(50);
  EXPECT_GT(p50, 40000u);
  EXPECT_LT(p50, 62000u);  // bucketed estimate: generous bound
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1);
  a.Record(3);
  b.Record(100);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 100u);
  EXPECT_EQ(a.sum(), 104u);
}

TEST(HistogramTest, MergeWithEmptyIsNoop) {
  Histogram a, empty;
  a.Record(5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min(), 5u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(9);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, HandlesLargeValues) {
  Histogram h;
  h.Record(1ULL << 50);
  h.Record(1ULL << 51);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), 1ULL << 51);
  EXPECT_GE(h.Percentile(100), h.min());
}

TEST(HistogramTest, PercentileEdgeCasesOnEmpty) {
  Histogram h;
  EXPECT_EQ(h.Percentile(0), 0u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
  EXPECT_EQ(h.Percentile(-5), 0u);
  EXPECT_EQ(h.Percentile(250), 0u);
}

TEST(HistogramTest, PercentileExtremesAnswerExactMinMax) {
  Histogram h;
  h.Record(17);
  h.Record(9000);
  h.Record(123456);
  // p<=0 and p>=100 must return the tracked extremes exactly, not a bucket
  // midpoint — these feed dashboards as "min latency" / "max latency".
  EXPECT_EQ(h.Percentile(0), 17u);
  EXPECT_EQ(h.Percentile(-1), 17u);
  EXPECT_EQ(h.Percentile(100), 123456u);
  EXPECT_EQ(h.Percentile(1000), 123456u);
}

TEST(HistogramTest, SingleValueRoundTripsAtEveryPercentile) {
  // With one sample, every percentile is that sample — even when the value
  // lands mid-bucket in the exponential range, the min/max clamp must pull
  // the midpoint estimate back to the recorded value.
  for (uint64_t v : {0ULL, 1ULL, 15ULL, 16ULL, 17ULL, 1000ULL, 123456789ULL,
                     1ULL << 50}) {
    Histogram h;
    h.Record(v);
    for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
      EXPECT_EQ(h.Percentile(p), v) << "v=" << v << " p=" << p;
    }
  }
}

TEST(HistogramTest, PercentileNeverEscapesObservedRange) {
  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  for (double p = 0.0; p <= 100.0; p += 2.5) {
    const uint64_t v = h.Percentile(p);
    EXPECT_GE(v, h.min()) << "p=" << p;
    EXPECT_LE(v, h.max()) << "p=" << p;
  }
}

TEST(HistogramTest, PercentileWithinOneBucketOfExactSample) {
  // The bucketed estimate must stay within the bucket that holds the true
  // nearest-rank sample: check against an exact sorted copy.
  Histogram h;
  std::vector<uint64_t> values;
  uint64_t v = 1;
  for (int i = 0; i < 40; ++i) {
    values.push_back(v);
    h.Record(v);
    v = v * 21 / 16 + 1;  // ~1.3x growth: spans many exponential buckets
    // (staying under the histogram's ~131k bucket resolution ceiling).
  }
  std::sort(values.begin(), values.end());
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double exact = p / 100.0 * static_cast<double>(values.size());
    size_t rank = static_cast<size_t>(exact);
    if (static_cast<double>(rank) < exact) ++rank;
    if (rank == 0) rank = 1;
    const uint64_t truth = values[rank - 1];
    const uint64_t est = h.Percentile(p);
    // Exponential buckets are at most ~12.5% wide beyond 16.
    EXPECT_GE(est, truth - truth / 8) << "p=" << p;
    EXPECT_LE(est, truth + truth / 8 + 1) << "p=" << p;
  }
}

TEST(HistogramTest, ToStringHasFields) {
  Histogram h;
  h.Record(10);
  const std::string s = h.ToString();
  EXPECT_NE(s.find("count=1"), std::string::npos);
  EXPECT_NE(s.find("p99="), std::string::npos);
}

}  // namespace
}  // namespace kflush
