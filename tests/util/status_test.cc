#include "util/status.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_FALSE(Status::InvalidArgument("x").IsNotFound());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeToString(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailInner() { return Status::IOError("inner"); }

Status Outer() {
  KFLUSH_RETURN_IF_ERROR(FailInner());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  Status s = Outer();
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace kflush
