// AVX2-vs-scalar equivalence for the scan kernels (util/simd.h). The
// scalar *_Scalar bodies are the semantics; the dispatched kernels must
// agree with them on every input — randomized arrays of awkward lengths
// (crossing the 4/8-lane boundaries), adversarial values (ties, ±inf,
// extremes of the unsigned range), and the long-array binary-search
// narrowing path of InsertPosDesc.

#include "util/simd.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/random.h"

namespace kflush {
namespace {

using simd::AppendIndicesGreater;
using simd::AppendIndicesGreaterScalar;
using simd::AppendIndicesLess;
using simd::AppendIndicesLessScalar;
using simd::CountAtLeast;
using simd::CountAtLeastScalar;
using simd::FindU64;
using simd::FindU64Scalar;
using simd::InsertPosDesc;
using simd::InsertPosDescScalar;

TEST(SimdTest, ReportsDispatchKind) {
  // Informational: makes CI logs show which body this run exercised.
  RecordProperty("avx2", simd::kAvx2Enabled ? 1 : 0);
  SUCCEED();
}

std::vector<double> RandomDescending(Rng* rng, size_t n, bool with_ties) {
  std::vector<double> scores(n);
  double cur = 1e9;
  for (size_t i = 0; i < n; ++i) {
    if (!with_ties || !rng->Bernoulli(0.3)) {
      cur -= static_cast<double>(1 + rng->Uniform(1000));
    }
    // else: repeat `cur` — an equal-score run.
    scores[i] = cur;
  }
  return scores;
}

TEST(SimdTest, InsertPosDescMatchesScalarRandomized) {
  Rng rng(1);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t n = rng.Uniform(40);  // covers 0 and sub-lane lengths
    const auto scores = RandomDescending(&rng, n, /*with_ties=*/true);
    // Probe existing values (tie positions), midpoints, and extremes.
    std::vector<double> probes = {1e18, -1e18};
    for (int p = 0; p < 6; ++p) {
      if (n > 0 && rng.Bernoulli(0.5)) {
        probes.push_back(scores[rng.Uniform(n)]);
      } else {
        probes.push_back(1e9 - static_cast<double>(rng.Uniform(50000)));
      }
    }
    for (double v : probes) {
      ASSERT_EQ(InsertPosDesc(scores.data(), n, v),
                InsertPosDescScalar(scores.data(), n, v))
          << "n=" << n << " v=" << v;
    }
  }
}

TEST(SimdTest, InsertPosDescLongArraysHitNarrowingPath) {
  Rng rng(2);
  for (size_t n : {65u, 100u, 1000u, 4097u}) {
    const auto scores = RandomDescending(&rng, n, /*with_ties=*/true);
    for (int p = 0; p < 200; ++p) {
      const double v = scores[rng.Uniform(n)] +
                       static_cast<double>(rng.Uniform(3)) - 1.0;
      ASSERT_EQ(InsertPosDesc(scores.data(), n, v),
                InsertPosDescScalar(scores.data(), n, v))
          << "n=" << n << " v=" << v;
    }
    // Boundary probes: before the head, after the tail.
    ASSERT_EQ(InsertPosDesc(scores.data(), n, scores.front() + 1),
              InsertPosDescScalar(scores.data(), n, scores.front() + 1));
    ASSERT_EQ(InsertPosDesc(scores.data(), n, scores.back() - 1),
              InsertPosDescScalar(scores.data(), n, scores.back() - 1));
  }
}

TEST(SimdTest, InsertPosDescInfinities) {
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> scores = {inf, 100.0, 0.0, -inf};
  for (double v : {inf, 101.0, 100.0, -1.0, -inf}) {
    EXPECT_EQ(InsertPosDesc(scores.data(), scores.size(), v),
              InsertPosDescScalar(scores.data(), scores.size(), v))
        << v;
  }
}

TEST(SimdTest, FindU64MatchesScalarRandomized) {
  Rng rng(3);
  for (int iter = 0; iter < 2000; ++iter) {
    const size_t n = rng.Uniform(70);
    std::vector<uint64_t> ids(n);
    for (auto& id : ids) id = rng.Uniform(50);  // dense → duplicates
    // Present and absent probes, plus extreme bit patterns.
    std::vector<uint64_t> probes = {0, ~uint64_t{0},
                                    uint64_t{1} << 63};
    for (int p = 0; p < 5; ++p) probes.push_back(rng.Uniform(60));
    if (n > 0) probes.push_back(ids[rng.Uniform(n)]);
    for (uint64_t id : probes) {
      ASSERT_EQ(FindU64(ids.data(), n, id), FindU64Scalar(ids.data(), n, id))
          << "n=" << n << " id=" << id;
    }
  }
}

TEST(SimdTest, FindU64HighBitPatterns) {
  // _mm256_cmpeq_epi64 compares full 64-bit lanes; values with the sign
  // bit set must not confuse the movemask extraction.
  std::vector<uint64_t> ids = {~uint64_t{0}, uint64_t{1} << 63,
                               0x8000000000000001ull, 1, 0,
                               0x7fffffffffffffffull, 42};
  for (uint64_t id : ids) {
    EXPECT_EQ(FindU64(ids.data(), ids.size(), id),
              FindU64Scalar(ids.data(), ids.size(), id));
  }
  EXPECT_EQ(FindU64(ids.data(), ids.size(), 0xdeadbeefull), ids.size());
}

TEST(SimdTest, AppendIndicesMatchScalarRandomized) {
  Rng rng(4);
  for (int iter = 0; iter < 1000; ++iter) {
    const size_t n = rng.Uniform(100);
    std::vector<uint32_t> counts(n);
    for (auto& c : counts) {
      // Mix small counts with values straddling the signed-compare bias.
      c = rng.Bernoulli(0.1)
              ? 0x7fffffffu + static_cast<uint32_t>(rng.Uniform(10))
              : static_cast<uint32_t>(rng.Uniform(40));
    }
    for (uint32_t threshold :
         {uint32_t{0}, uint32_t{1}, static_cast<uint32_t>(rng.Uniform(50)),
          uint32_t{0x7fffffffu}, uint32_t{0x80000000u}, ~uint32_t{0}}) {
      std::vector<uint32_t> got, want;
      AppendIndicesGreater(counts.data(), n, threshold, &got);
      AppendIndicesGreaterScalar(counts.data(), n, threshold, &want);
      ASSERT_EQ(got, want) << "greater n=" << n << " t=" << threshold;
      got.clear();
      want.clear();
      AppendIndicesLess(counts.data(), n, threshold, &got);
      AppendIndicesLessScalar(counts.data(), n, threshold, &want);
      ASSERT_EQ(got, want) << "less n=" << n << " t=" << threshold;
    }
  }
}

TEST(SimdTest, AppendIndicesAppendsWithoutClobbering) {
  // Kernels append — pre-existing contents of `out` must survive.
  std::vector<uint32_t> counts = {5, 1, 9, 9, 0};
  std::vector<uint32_t> out = {777};
  AppendIndicesGreater(counts.data(), counts.size(), 4, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{777, 0, 2, 3}));
}

TEST(SimdTest, CountAtLeastMatchesScalarRandomized) {
  Rng rng(5);
  for (int iter = 0; iter < 1000; ++iter) {
    const size_t n = rng.Uniform(100);
    std::vector<uint32_t> counts(n);
    for (auto& c : counts) {
      c = rng.Bernoulli(0.1) ? ~uint32_t{0} - static_cast<uint32_t>(
                                   rng.Uniform(5))
                             : static_cast<uint32_t>(rng.Uniform(30));
    }
    for (uint32_t threshold :
         {uint32_t{0}, uint32_t{1}, static_cast<uint32_t>(rng.Uniform(40)),
          uint32_t{0x80000000u}, ~uint32_t{0}}) {
      ASSERT_EQ(CountAtLeast(counts.data(), n, threshold),
                CountAtLeastScalar(counts.data(), n, threshold))
          << "n=" << n << " t=" << threshold;
    }
  }
}

}  // namespace
}  // namespace kflush
