#include "util/zipf.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace kflush {
namespace {

TEST(ZipfTest, SamplesStayInRange) {
  Rng rng(1);
  ZipfGenerator zipf(1000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 1000u);
  }
}

TEST(ZipfTest, SingleElementAlwaysZero) {
  Rng rng(2);
  ZipfGenerator zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  Rng rng(3);
  ZipfGenerator zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) counts[zipf.Sample(&rng)]++;
  for (int c : counts) EXPECT_NEAR(c, kN / 10, kN / 10 * 0.1);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(500, 1.0);
  double sum = 0;
  for (uint64_t i = 0; i < 500; ++i) sum += zipf.Probability(i);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilityDecreasesWithRank) {
  ZipfGenerator zipf(100, 1.2);
  for (uint64_t i = 1; i < 100; ++i) {
    EXPECT_GT(zipf.Probability(i - 1), zipf.Probability(i));
  }
}

// Empirical frequencies track the analytic law for the head of the
// distribution, across skews (parameterized property sweep).
class ZipfSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfSkewTest, EmpiricalMatchesAnalytic) {
  const double s = GetParam();
  constexpr uint64_t kN = 1000;
  constexpr int kSamples = 400000;
  Rng rng(42);
  ZipfGenerator zipf(kN, s);
  std::vector<int> counts(kN, 0);
  for (int i = 0; i < kSamples; ++i) counts[zipf.Sample(&rng)]++;
  for (uint64_t rank : {0ULL, 1ULL, 2ULL, 5ULL, 10ULL, 50ULL}) {
    const double expected = zipf.Probability(rank) * kSamples;
    if (expected < 50) continue;  // too rare for a tight bound
    EXPECT_NEAR(counts[rank], expected, std::max(expected * 0.15, 30.0))
        << "s=" << s << " rank=" << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(Skews, ZipfSkewTest,
                         ::testing::Values(0.5, 0.8, 1.0, 1.2, 2.0));

TEST(ZipfTest, HeadDominatesAtSkewOne) {
  Rng rng(5);
  ZipfGenerator zipf(100000, 1.0);
  constexpr int kSamples = 200000;
  int head = 0;  // top-100 ranks
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(&rng) < 100) ++head;
  }
  // For n=1e5, s=1: P(rank<100) ≈ H(100)/H(1e5) ≈ 5.19/12.1 ≈ 0.43.
  EXPECT_NEAR(static_cast<double>(head) / kSamples, 0.43, 0.05);
}

TEST(ZipfTest, DeterministicGivenRngSeed) {
  ZipfGenerator zipf(1000, 1.0);
  Rng a(7), b(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(zipf.Sample(&a), zipf.Sample(&b));
  }
}

// --- AliasTable ---

TEST(AliasTableTest, SingleWeight) {
  Rng rng(8);
  AliasTable table({5.0});
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(&rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  Rng rng(9);
  AliasTable table({1.0, 0.0, 1.0});
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(table.Sample(&rng), 1u);
  }
}

TEST(AliasTableTest, MatchesWeights) {
  Rng rng(10);
  std::vector<double> weights = {1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  std::vector<int> counts(4, 0);
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) counts[table.Sample(&rng)]++;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = weights[i] / 10.0 * kN;
    EXPECT_NEAR(counts[i], expected, expected * 0.05);
  }
}

TEST(AliasTableTest, LargeSkewedTable) {
  Rng rng(11);
  std::vector<double> weights(10000);
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  AliasTable table(weights);
  std::vector<int> counts(weights.size(), 0);
  constexpr int kN = 500000;
  for (int i = 0; i < kN; ++i) counts[table.Sample(&rng)]++;
  // rank 0 weight fraction = 1 / H(10000) ≈ 1/9.79.
  const double expected0 = kN / 9.79;
  EXPECT_NEAR(counts[0], expected0, expected0 * 0.1);
}

}  // namespace
}  // namespace kflush
