#include "util/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(WallClockTest, Monotone) {
  WallClock* clock = WallClock::Default();
  Timestamp a = clock->NowMicros();
  Timestamp b = clock->NowMicros();
  EXPECT_LE(a, b);
}

TEST(SimClockTest, StartsAtGivenTime) {
  SimClock clock(500);
  EXPECT_EQ(clock.NowMicros(), 500u);
}

TEST(SimClockTest, AdvanceReturnsNewTime) {
  SimClock clock(100);
  EXPECT_EQ(clock.Advance(50), 150u);
  EXPECT_EQ(clock.NowMicros(), 150u);
}

TEST(SimClockTest, SetOverrides) {
  SimClock clock;
  clock.Set(1234);
  EXPECT_EQ(clock.NowMicros(), 1234u);
}

TEST(SimClockTest, ConcurrentAdvancesSumUp) {
  SimClock clock(0);
  constexpr int kThreads = 8;
  constexpr int kSteps = 10000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&clock] {
      for (int j = 0; j < kSteps; ++j) clock.Advance(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(clock.NowMicros(), static_cast<Timestamp>(kThreads) * kSteps);
}

TEST(StopwatchTest, MeasuresElapsed) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(watch.ElapsedMicros(), 4000u);
  watch.Restart();
  EXPECT_LT(watch.ElapsedMicros(), 4000u);
}

}  // namespace
}  // namespace kflush
