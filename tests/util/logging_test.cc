#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>

#include "util/thread_util.h"

namespace kflush {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

class LogFormatGuard {
 public:
  LogFormatGuard() : saved_(GetLogFormat()) {}
  ~LogFormatGuard() { SetLogFormat(saved_); }

 private:
  LogFormat saved_;
};

TEST(LoggingTest, SetAndGetLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, MacroRespectsLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  // Below-threshold messages must not evaluate their stream expression.
  KFLUSH_DEBUG(expensive());
  KFLUSH_ERROR(expensive());  // kOff suppresses even errors
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  KFLUSH_DEBUG(expensive());
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(out.find("payload"), std::string::npos);
  EXPECT_NE(out.find("DEBUG"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, LevelsAreOrdered) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  KFLUSH_INFO("hidden info");
  KFLUSH_WARN("visible warning");
  KFLUSH_ERROR("visible error");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden info"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
}

TEST(LoggingTest, TextPrefixCarriesClockAndThreadId) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  KFLUSH_WARN("prefixed");
  const std::string out = testing::internal::GetCapturedStderr();
  // "[<sec>.<micros> t<tid> WARN logging_test.cc:<line>] prefixed" — the
  // timestamp is MonotonicMicros-based and the tid the logical ThisThreadId,
  // so a log line lands directly on a trace timeline.
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0], '[');
  const std::string tid_token = " t" + std::to_string(ThisThreadId()) + " ";
  EXPECT_NE(out.find(tid_token), std::string::npos) << out;
  EXPECT_NE(out.find(" WARN logging_test.cc:"), std::string::npos) << out;
  EXPECT_NE(out.find("] prefixed"), std::string::npos) << out;
  // Fractional-second field is fixed-width: '.' sits six digits before ' t'.
  const size_t dot = out.find('.');
  ASSERT_NE(dot, std::string::npos);
  EXPECT_EQ(out.find(tid_token), dot + 7) << out;
}

TEST(LoggingTest, JsonFormatEmitsOneObjectPerLine) {
  LogLevelGuard level_guard;
  LogFormatGuard format_guard;
  SetLogLevel(LogLevel::kInfo);
  SetLogFormat(LogFormat::kJson);
  testing::internal::CaptureStderr();
  KFLUSH_INFO("say \"hi\"");
  const std::string out = testing::internal::GetCapturedStderr();
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out.front(), '{');
  EXPECT_EQ(out.back(), '\n');
  EXPECT_EQ(out[out.size() - 2], '}');
  EXPECT_NE(out.find("\"ts_us\":"), std::string::npos) << out;
  EXPECT_NE(out.find("\"tid\":" + std::to_string(ThisThreadId())),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"level\":\"INFO\""), std::string::npos) << out;
  EXPECT_NE(out.find("\"file\":\"logging_test.cc\""), std::string::npos)
      << out;
  // Message content is JSON-escaped.
  EXPECT_NE(out.find("\"msg\":\"say \\\"hi\\\"\""), std::string::npos) << out;
}

}  // namespace
}  // namespace kflush
