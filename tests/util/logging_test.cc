#include "util/logging.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(GetLogLevel()) {}
  ~LogLevelGuard() { SetLogLevel(saved_); }

 private:
  LogLevel saved_;
};

TEST(LoggingTest, SetAndGetLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
}

TEST(LoggingTest, MacroRespectsLevel) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return "payload";
  };
  // Below-threshold messages must not evaluate their stream expression.
  KFLUSH_DEBUG(expensive());
  KFLUSH_ERROR(expensive());  // kOff suppresses even errors
  EXPECT_EQ(evaluations, 0);
  SetLogLevel(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  KFLUSH_DEBUG(expensive());
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(out.find("payload"), std::string::npos);
  EXPECT_NE(out.find("DEBUG"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, LevelsAreOrdered) {
  LogLevelGuard guard;
  SetLogLevel(LogLevel::kWarn);
  testing::internal::CaptureStderr();
  KFLUSH_INFO("hidden info");
  KFLUSH_WARN("visible warning");
  KFLUSH_ERROR("visible error");
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("hidden info"), std::string::npos);
  EXPECT_NE(out.find("visible warning"), std::string::npos);
  EXPECT_NE(out.find("visible error"), std::string::npos);
}

}  // namespace
}  // namespace kflush
