// Unit tests for the slab layer under the digestion hot path: Arena bump
// allocation (alignment, chunk growth, Reset recycling, deterministic
// footprint) and SlabPool size-class recycling (class rounding, free-list
// reuse, oversize fall-through).

#include "util/arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "util/random.h"

namespace kflush {
namespace {

TEST(ArenaTest, AllocationsAlignedAndWritable) {
  Arena arena;
  std::vector<std::pair<uint8_t*, size_t>> blocks;
  Rng rng(42);
  for (int i = 0; i < 500; ++i) {
    const size_t bytes = 1 + rng.Uniform(300);
    auto* p = static_cast<uint8_t*>(arena.Alloc(bytes));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(max_align_t), 0u);
    // Fill with a block-unique byte; verified below to prove no overlap.
    std::memset(p, static_cast<int>(i % 251), bytes);
    blocks.emplace_back(p, bytes);
  }
  for (size_t i = 0; i < blocks.size(); ++i) {
    for (size_t b = 0; b < blocks[i].second; ++b) {
      ASSERT_EQ(blocks[i].first[b], static_cast<uint8_t>(i % 251))
          << "block " << i << " byte " << b << " was clobbered";
    }
  }
}

TEST(ArenaTest, CustomAlignmentHonored) {
  Arena arena;
  for (size_t align : {size_t{1}, size_t{2}, size_t{8}, size_t{64},
                       size_t{256}}) {
    void* p = arena.Alloc(10, align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % align, 0u) << align;
  }
}

TEST(ArenaTest, OversizeAllocationGetsDedicatedChunk) {
  Arena arena(4096);
  const size_t before = arena.NumChunks();
  void* p = arena.Alloc(Arena::kMaxChunkBytes + 1000);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xAB, Arena::kMaxChunkBytes + 1000);
  EXPECT_GT(arena.NumChunks(), before);
}

TEST(ArenaTest, ResetKeepsFootprintAndReusesChunks) {
  Arena arena(4096);
  for (int i = 0; i < 1000; ++i) arena.Alloc(128);
  const size_t footprint = arena.FootprintBytes();
  const size_t chunks = arena.NumChunks();
  EXPECT_GT(footprint, 0u);

  arena.Reset();
  EXPECT_EQ(arena.AllocatedBytes(), 0u);
  EXPECT_EQ(arena.FootprintBytes(), footprint);

  // The same allocation sequence must fit in the recycled chunks: no new
  // OS memory.
  for (int i = 0; i < 1000; ++i) arena.Alloc(128);
  EXPECT_EQ(arena.FootprintBytes(), footprint);
  EXPECT_EQ(arena.NumChunks(), chunks);
}

TEST(ArenaTest, FootprintIsDeterministicInAllocSequence) {
  // Two arenas fed the identical pseudo-random sequence must end with the
  // identical footprint — the property the byte-accounting tests lean on.
  Arena a(4096);
  Arena b(4096);
  Rng rng_a(7);
  Rng rng_b(7);
  for (int i = 0; i < 2000; ++i) {
    a.Alloc(1 + rng_a.Uniform(2048));
    b.Alloc(1 + rng_b.Uniform(2048));
  }
  EXPECT_EQ(a.FootprintBytes(), b.FootprintBytes());
  EXPECT_EQ(a.AllocatedBytes(), b.AllocatedBytes());
  EXPECT_EQ(a.NumChunks(), b.NumChunks());
}

TEST(SlabPoolTest, ClassRounding) {
  EXPECT_EQ(SlabPool::ClassBytes(1), SlabPool::kMinClassBytes);
  EXPECT_EQ(SlabPool::ClassBytes(16), 16u);
  EXPECT_EQ(SlabPool::ClassBytes(17), 32u);
  EXPECT_EQ(SlabPool::ClassBytes(100), 128u);
  EXPECT_EQ(SlabPool::ClassBytes(4096), 4096u);
  EXPECT_EQ(SlabPool::ClassBytes(SlabPool::kMaxClassBytes),
            SlabPool::kMaxClassBytes);
  // Oversize requests are not rounded (they go to operator new).
  EXPECT_EQ(SlabPool::ClassBytes(SlabPool::kMaxClassBytes + 1),
            SlabPool::kMaxClassBytes + 1);
}

TEST(SlabPoolTest, FreeThenAllocSameClassReusesBlock) {
  SlabPool pool;
  void* p = pool.Alloc(100);  // class 128
  pool.Free(p, 100);
  EXPECT_EQ(pool.FreeBlocks(), 1u);
  // A different size in the same class pops the same block.
  void* q = pool.Alloc(128);
  EXPECT_EQ(q, p);
  EXPECT_EQ(pool.FreeBlocks(), 0u);
}

TEST(SlabPoolTest, SteadyStateChurnDoesNotGrowFootprint) {
  SlabPool pool;
  // Warm up one block per class used below.
  std::vector<void*> held;
  for (size_t bytes : {24u, 100u, 1000u, 5000u}) {
    held.push_back(pool.Alloc(bytes));
  }
  size_t i = 0;
  for (size_t bytes : {24u, 100u, 1000u, 5000u}) pool.Free(held[i++], bytes);
  const size_t footprint = pool.FootprintBytes();

  // Flush-churn simulation: alloc/free cycles must recycle, never grow.
  Rng rng(3);
  const size_t sizes[] = {24, 100, 1000, 5000};
  for (int round = 0; round < 10000; ++round) {
    const size_t bytes = sizes[rng.Uniform(4)];
    void* p = pool.Alloc(bytes);
    std::memset(p, 0x5A, bytes);
    pool.Free(p, bytes);
  }
  EXPECT_EQ(pool.FootprintBytes(), footprint);
}

TEST(SlabPoolTest, OversizeAllocationsTrackedAndReleased) {
  SlabPool pool;
  const size_t big = SlabPool::kMaxClassBytes + 4096;
  const size_t before = pool.FootprintBytes();
  void* p = pool.Alloc(big);
  std::memset(p, 1, big);
  EXPECT_GE(pool.FootprintBytes(), before + big);
  pool.Free(p, big);
  // Oversize blocks return to the OS immediately (not free-listed).
  EXPECT_EQ(pool.FootprintBytes(), before);
  EXPECT_EQ(pool.FreeBlocks(), 0u);
}

TEST(SlabPoolTest, ManyLiveBlocksStayDisjoint) {
  SlabPool pool;
  Rng rng(11);
  std::vector<std::pair<uint8_t*, size_t>> live;
  for (int i = 0; i < 400; ++i) {
    const size_t bytes = 1 + rng.Uniform(600);
    auto* p = static_cast<uint8_t*>(pool.Alloc(bytes));
    std::memset(p, i % 251, bytes);
    live.emplace_back(p, bytes);
    if (live.size() > 200) {
      // Free a random one to interleave free-list traffic.
      const size_t victim = rng.Uniform(live.size());
      pool.Free(live[victim].first, live[victim].second);
      live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  std::set<uint8_t*> seen;
  for (auto& [p, bytes] : live) {
    EXPECT_TRUE(seen.insert(p).second) << "duplicate live pointer";
  }
}

}  // namespace
}  // namespace kflush
