#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace kflush {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(RngTest, UniformOfOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.Uniform(1), 0u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    counts[rng.Uniform(kBuckets)]++;
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(19);
  constexpr int kN = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < kN; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kN, 1.0, 0.03);
}

TEST(RngTest, BernoulliEdges) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int heads = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (rng.Bernoulli(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.01);
}

TEST(RngTest, OneNPlusGeometricBounds) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    uint32_t n = rng.OneNPlusGeometric(0.5, 4);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 4u);
  }
  // p_more = 0 always yields exactly 1.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.OneNPlusGeometric(0.0, 4), 1u);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.Split();
  // Child continues deterministically and differs from parent.
  Rng parent2(37);
  Rng child2 = parent2.Split();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(child.Next(), child2.Next());
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), orig.begin()));  // overwhelming
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

}  // namespace
}  // namespace kflush
