// The standing-query differential oracle (the headline artifact of the
// continuous-query subsystem): replay a seeded stream into a sharded
// deployment under every flush policy and shard count {1, 4, 8} with an
// eviction-heavy budget, and hold every subscription's folded delta
// stream — at every probe point — byte-identical to a brute-force
// reference that recomputes the top-k from every record ever ingested.
//
// What "byte-identical" means here: the folded member list must match the
// reference exactly in (score, id) content AND order (the engine's
// score-desc/id-desc materialization order, which the sharded fan-out
// merge must preserve), and every enter delta must carry the full record,
// field-for-field equal to the ingested copy.
//
// Eviction integration is asserted, not assumed: each case must observe
// sub.member_evictions > 0 (standing-result members leaving the memory
// tier under flush pressure), every logged member eviction must name a
// record that entered some standing result, the scheduled disk-backed
// refills must run (sub.refills > 0) and change nothing (records are
// insert-only with immutable scores), and each shard's eviction audit
// trail must reconcile exactly against its policy counters.

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <cctype>
#include <string>
#include <vector>

#include "core/sharded_store.h"
#include "core/trace.h"
#include "gtest/gtest.h"
#include "policy/flush_policy.h"
#include "sub/subscription_manager.h"
#include "testing/sub_fold.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::DeltaFolder;
using testing_util::RecordsEqual;

constexpr size_t kStreamLen = 3000;
constexpr size_t kFlushEvery = 100;
constexpr size_t kProbeEvery = 250;
constexpr size_t kMidSubscribeAt = 800;
// Total budget divisible by every shard count compared (1, 4, 8) so the
// per-shard split drops no remainder bytes.
constexpr size_t kTotalBudget = 256 * 1024;
constexpr KeywordId kHotTerms = 8;
constexpr KeywordId kVocab = 64;
// Store-level k stays at 5 while subscriptions go up to 12: members ranked
// 6..12 of a subscribed term are exactly what the k-flushing policies
// evict, so member evictions happen under all four policies.
constexpr uint32_t kStoreK = 5;

struct OracleCase {
  PolicyKind policy;
  size_t shards;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  std::string name = std::string(PolicyKindName(info.param.policy)) +
                     "_shards" + std::to_string(info.param.shards);
  // gtest parameter names allow only [A-Za-z0-9_] ("kFlushing-MK" has a dash).
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') c = '_';
  }
  return name;
}

std::vector<OracleCase> AllCases() {
  std::vector<OracleCase> cases;
  for (PolicyKind policy : testing_util::AllPolicies()) {
    for (size_t shards : {size_t{1}, size_t{4}, size_t{8}}) {
      cases.push_back({policy, shards});
    }
  }
  return cases;
}

/// Deterministic stream: ids pre-stamped, timestamps non-monotonic in
/// arrival order (so displacement exits are not just "oldest member"),
/// keyword mass concentrated on the hot terms subscriptions watch, and
/// text padding sized so the stream overshoots the budget several times.
std::vector<Microblog> MakeStream() {
  std::vector<Microblog> stream;
  stream.reserve(kStreamLen);
  uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t i = 0; i < kStreamLen; ++i) {
    Microblog blog;
    blog.id = static_cast<MicroblogId>(i + 1);
    blog.created_at = 1'000'000 + static_cast<Timestamp>(next() % 500'000);
    blog.user_id = 1 + (next() % 50);
    const KeywordId first = (next() % 100 < 75)
                                ? static_cast<KeywordId>(next() % kHotTerms)
                                : static_cast<KeywordId>(next() % kVocab);
    blog.keywords = {first};
    if (next() % 100 < 15) {
      const KeywordId second = static_cast<KeywordId>(next() % kVocab);
      if (second != first) blog.keywords.push_back(second);
    }
    blog.text = std::string(80, 'a' + static_cast<char>(i % 26));
    stream.push_back(std::move(blog));
  }
  return stream;
}

struct StandingQuery {
  uint64_t id = 0;
  TermId term = 0;
  uint32_t k = 0;
  DeltaFolder fold;
  std::set<MicroblogId> ever_entered;
};

class SubscriptionOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(SubscriptionOracleTest, FoldedDeltasMatchBruteForceAtEveryProbe) {
  const OracleCase param = GetParam();

  ShardedStoreOptions opts;
  opts.store = testing_util::SmallStoreOptions(param.policy, kTotalBudget,
                                               kStoreK);
  opts.store.flush_fraction = 0.3;  // eviction-heavy
  opts.num_shards = param.shards;
  ShardedMicroblogStore store(opts);

  // Install the audit trails before the first flush so each covers its
  // policy's whole lifetime (ReconcileAuditWithStats requires that).
  std::vector<std::unique_ptr<EvictionAuditTrail>> trails;
  for (size_t i = 0; i < store.num_shards(); ++i) {
    trails.push_back(std::make_unique<EvictionAuditTrail>());
    store.shard(i)->policy()->set_audit_trail(trails.back().get());
  }

  auto subs = MakeSubscriptions(&store);
  const std::vector<Microblog> stream = MakeStream();
  std::map<MicroblogId, const Microblog*> by_id;
  for (const Microblog& blog : stream) by_id[blog.id] = &blog;

  std::vector<StandingQuery> standing;
  auto subscribe = [&](TermId term, uint32_t k) {
    SubscriptionSpec spec;
    spec.kind = SubKind::kKeyword;
    spec.k = k;
    spec.term = term;
    auto id = subs->Subscribe(spec);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    standing.push_back(StandingQuery{*id, term, k, DeltaFolder{}, {}});
  };
  for (KeywordId term = 0; term < kHotTerms; ++term) {
    subscribe(static_cast<TermId>(term), term % 2 == 0 ? 3 : 12);
    if (::testing::Test::HasFatalFailure()) return;
  }

  const RankingFunction* ranking = store.shard(0)->ranking();
  auto brute_force = [&](const StandingQuery& sub,
                         size_t ingested) -> std::vector<SubMember> {
    std::vector<SubMember> all;
    for (size_t i = 0; i < ingested; ++i) {
      const Microblog& blog = stream[i];
      if (std::find(blog.keywords.begin(), blog.keywords.end(),
                    static_cast<KeywordId>(sub.term)) == blog.keywords.end()) {
        continue;
      }
      all.push_back(SubMember{ranking->Score(blog), blog.id});
    }
    std::sort(all.begin(), all.end(),
              [](const SubMember& a, const SubMember& b) {
                return SubMemberBetter(a.score, a.id, b.score, b.id);
              });
    if (all.size() > sub.k) all.resize(sub.k);
    return all;
  };

  auto probe = [&](size_t ingested) {
    subs->ProcessPendingRefills();
    for (StandingQuery& sub : standing) {
      std::vector<SubDelta> deltas;
      ASSERT_TRUE(subs->DrainDeltas(sub.id, &deltas));
      for (const SubDelta& delta : deltas) {
        if (delta.kind != SubDeltaKind::kEnter) continue;
        sub.ever_entered.insert(delta.id);
        auto it = by_id.find(delta.id);
        ASSERT_NE(it, by_id.end()) << "enter for unknown id " << delta.id;
        ASSERT_TRUE(RecordsEqual(delta.record, *it->second))
            << "enter record for id " << delta.id
            << " is not byte-identical to the ingested copy";
      }
      ASSERT_TRUE(sub.fold.ApplyAll(deltas))
          << "sub " << sub.id << " (term " << sub.term << ") after "
          << ingested << " inserts";
      std::vector<SubMember> live;
      ASSERT_TRUE(subs->SnapshotMembers(sub.id, &live));
      ASSERT_TRUE(sub.fold.MatchesReference(live))
          << "folded stream diverged from live result, sub " << sub.id;
      ASSERT_TRUE(sub.fold.MatchesReference(brute_force(sub, ingested)))
          << "DIVERGENCE: sub " << sub.id << " (term " << sub.term << ", k "
          << sub.k << ") after " << ingested << " inserts, "
          << store.num_shards() << " shards, "
          << PolicyKindName(param.policy);
    }
  };

  uint32_t churn = 0;
  for (size_t i = 0; i < stream.size(); ++i) {
    ASSERT_TRUE(store.Insert(stream[i]).ok());
    const size_t ingested = i + 1;
    if (ingested % kFlushEvery == 0) store.FlushAllOnce();
    if (ingested == kMidSubscribeAt) {
      // Late subscribers seed through the force-disk snapshot: part of
      // their initial answer is already disk-resident by now.
      for (KeywordId term = 0; term < 4; ++term) {
        subscribe(static_cast<TermId>(term), 7);
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
    if (ingested % kProbeEvery == 0) {
      // SetK churn: shrink and grow in turn, exercised mid-stream.
      StandingQuery& sub = standing[churn % standing.size()];
      sub.k = (churn % 3 == 0) ? 2 : (churn % 3 == 1 ? 12 : 6);
      ASSERT_TRUE(subs->SetK(sub.id, sub.k).ok());
      ++churn;
      probe(ingested);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  store.FlushAllOnce();
  probe(stream.size());
  if (::testing::Test::HasFatalFailure()) return;

  // Eviction integration happened and was audited.
  auto* reg = subs->metrics_registry();
  EXPECT_GT(reg->counter("sub.member_evictions")->value(), 0u)
      << "budget was not eviction-heavy enough to evict a standing member";
  EXPECT_GT(reg->counter("sub.refills")->value(), 0u);
  std::set<MicroblogId> entered_any;
  for (const StandingQuery& sub : standing) {
    entered_any.insert(sub.ever_entered.begin(), sub.ever_entered.end());
  }
  for (MicroblogId id : subs->member_eviction_ids()) {
    EXPECT_TRUE(entered_any.count(id) > 0)
        << "member-eviction log names id " << id
        << " which never entered any standing result";
  }
  uint64_t audited_evictions = 0;
  for (size_t i = 0; i < store.num_shards(); ++i) {
    const Status reconciled = ReconcileAuditWithStats(
        trails[i]->Records(), store.shard(i)->policy()->stats());
    EXPECT_TRUE(reconciled.ok())
        << "shard " << i << ": " << reconciled.ToString();
    for (const EvictionAuditRecord& record : trails[i]->Records()) {
      audited_evictions += record.records_flushed;
    }
  }
  EXPECT_GT(audited_evictions, 0u);

  // Terminal accounting: undrained deltas (there should be none — the
  // final probe drained everything) plus drained ones partition published.
  subs->Shutdown();
  EXPECT_EQ(reg->counter("sub.deltas_published")->value(),
            reg->counter("sub.deltas_pushed")->value() +
                reg->counter("sub.deltas_dropped_on_disconnect")->value());
  EXPECT_EQ(reg->counter("sub.deltas_dropped_on_disconnect")->value(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllShardCounts, SubscriptionOracleTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace kflush
