// Byte-conservation suite for the striped accounting introduced with the
// slab-backed storage layer. Record bytes are tracked three independent
// ways — per-shard ShardCounters inside RawDataStore, MemoryTracker
// component charges, and the policy's flushed-byte counters — and every
// pair must agree exactly, for every policy, after an arbitrary number of
// flush cycles:
//
//   raw_store.MemoryBytes()   == sum of RecordBytes over resident records
//                             == tracker charge for MemoryComponent::kRawStore
//   bytes ever Put            == resident bytes + PolicyStats.record_bytes_flushed
//
// The last identity is the flush ledger: relaxed per-stripe counters are
// allowed to be *internally* unordered, but their aggregate can never leak
// or invent a byte.

#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gen/tweet_generator.h"
#include "policy/flush_policy.h"
#include "sim/experiment.h"
#include "storage/raw_store.h"

namespace kflush {
namespace {

class ByteConservationTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ByteConservationTest, RawStoreBytesBalanceAcrossFlushCycles) {
  SimClock clock(1'000'000);
  StoreOptions options;
  options.policy = GetParam();
  options.k = 10;
  options.memory_budget_bytes = 2 << 20;
  options.clock = &clock;
  MicroblogStore store(options);

  TweetGeneratorOptions stream;
  stream.seed = 777;
  stream.vocabulary_size = 8'000;
  stream.num_users = 1'000;
  TweetGenerator tweets(stream);

  uint64_t bytes_put = 0;
  std::vector<TermId> terms;
  for (int i = 0; i < 25'000; ++i) {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    // Mirror the ingest path's decision: only term-bearing records are Put.
    store.extractor()->ExtractTerms(blog, &terms);
    if (!terms.empty()) bytes_put += RawDataStore::RecordBytes(blog);
    ASSERT_TRUE(store.Insert(std::move(blog)).ok());
  }
  ASSERT_GT(store.policy()->stats().flush_cycles, 0u)
      << "workload never triggered a flush; identities untested";

  // Identity 1: the striped per-shard counters agree with a full walk.
  uint64_t walked_bytes = 0;
  uint64_t walked_records = 0;
  store.raw_store()->ForEach(
      [&](const Microblog& blog, uint32_t, uint32_t) {
        walked_bytes += RawDataStore::RecordBytes(blog);
        ++walked_records;
      });
  EXPECT_EQ(store.raw_store()->MemoryBytes(), walked_bytes);
  EXPECT_EQ(store.raw_store()->size(), walked_records);

  // Identity 2: the tracker's component charge is the same number.
  EXPECT_EQ(store.tracker().ComponentUsed(MemoryComponent::kRawStore),
            walked_bytes);

  // Identity 3: everything ever stored is either still resident or was
  // flushed through the policy (whose ledger counts the same RecordBytes).
  const PolicyStats stats = store.policy()->stats();
  EXPECT_EQ(bytes_put, walked_bytes + stats.record_bytes_flushed)
      << "put=" << bytes_put << " resident=" << walked_bytes
      << " flushed=" << stats.record_bytes_flushed;
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ByteConservationTest,
                         ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                                           PolicyKind::kKFlushing,
                                           PolicyKind::kKFlushingMK),
                         [](const auto& info) {
                           std::string name = PolicyKindName(info.param);
                           // gtest parameter names must be alphanumeric.
                           std::erase_if(name, [](char c) {
                             return !std::isalnum(static_cast<unsigned char>(c));
                           });
                           return name;
                         });

}  // namespace
}  // namespace kflush
