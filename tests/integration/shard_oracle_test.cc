// The differential shard oracle: a sharded deployment must be invisible
// in query answers. For every flush policy and every attribute we stream
// the identical deterministic tweet sequence into
//
//   A. a ShardedMicroblogStore with shards = 1,
//   B. a ShardedMicroblogStore with shards = TestShardCount()
//      (KFLUSH_TEST_SHARDS; the CI matrix runs 1 and 4), and
//   C. a plain MicroblogStore + QueryEngine baseline,
//
// then probe all three with the identical query sequence at regular
// points of the stream — including mid-run SetK churn — and require
// field-wise identical top-k answers (ids, timestamps, users, text,
// keywords) between A and B at every probe. The baseline C must agree on
// single-term and OR answers; AND is excluded there by design: the
// fan-out layer always evaluates AND over each term's full memory ∪ disk
// lists (exact), while the baseline engine's AND hit path serves from
// records resident in memory, which is a function of flush timing.
// memory_hit / from_memory flags are NOT compared between A and B — the
// shards flush on their own budget slices, so hit-rates legitimately
// differ; only answers must not.
//
// The run ends with bookkeeping reconciliation: per-shard eviction audit
// trails must reconcile against each shard's PolicyStats, and the
// aggregated MetricsRegistry snapshot must agree with the aggregated
// PolicyStats/IngestStats structs.

#include <cstddef>
#include <deque>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "core/sharded_store.h"
#include "core/store.h"
#include "core/trace.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "gtest/gtest.h"
#include "policy/flush_policy.h"
#include "testing/test_util.h"
#include "util/clock.h"

namespace kflush {
namespace {

using testing_util::RecordsEqual;
using testing_util::TestShardCount;

std::string Describe(const Microblog& blog) {
  std::ostringstream os;
  os << "id=" << blog.id << " ts=" << blog.created_at
     << " user=" << blog.user_id;
  return os.str();
}

std::string DescribeQuery(const TopKQuery& query) {
  std::ostringstream os;
  os << QueryTypeName(query.type) << " k=" << query.k << " terms=[";
  for (size_t i = 0; i < query.terms.size(); ++i) {
    os << (i ? "," : "") << query.terms[i];
  }
  os << "]";
  return os.str();
}

/// Asserts two answers are field-wise identical.
void ExpectSameAnswers(const QueryResult& a, const QueryResult& b,
                       const std::string& label) {
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (size_t i = 0; i < a.results.size(); ++i) {
    ASSERT_TRUE(RecordsEqual(a.results[i], b.results[i]))
        << label << " position " << i << ": "
        << Describe(a.results[i]) << " vs " << Describe(b.results[i]);
  }
}

/// One deployment under test: a sharded store fed by its own generator
/// instance (same options => identical stream) with per-shard audit
/// trails attached for the end-of-run reconciliation.
struct Deployment {
  Deployment(PolicyKind policy, AttributeKind attribute, size_t shards,
             const TweetGeneratorOptions& stream, size_t total_budget)
      : clock(stream.start_time),
        store([&] {
          ShardedStoreOptions so;
          so.store.memory_budget_bytes = total_budget;
          so.store.flush_fraction = 0.2;
          so.store.k = 10;
          so.store.policy = policy;
          so.store.attribute = attribute;
          so.store.auto_flush = true;
          so.store.clock = &clock;
          so.num_shards = shards;
          return so;
        }()),
        tweets(stream) {
    audits.resize(store.num_shards());
    for (size_t i = 0; i < store.num_shards(); ++i) {
      store.shard(i)->policy()->set_audit_trail(&audits[i]);
    }
  }

  ~Deployment() {
    for (size_t i = 0; i < store.num_shards(); ++i) {
      store.shard(i)->policy()->set_audit_trail(nullptr);
    }
  }

  void StreamOne() {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    ASSERT_TRUE(store.Insert(std::move(blog)).ok());
  }

  SimClock clock;
  ShardedMicroblogStore store;
  TweetGenerator tweets;
  std::deque<EvictionAuditTrail> audits;
};

/// The unsharded baseline, streamed identically.
struct Baseline {
  Baseline(PolicyKind policy, AttributeKind attribute,
           const TweetGeneratorOptions& stream, size_t total_budget)
      : clock(stream.start_time),
        store([&] {
          StoreOptions so;
          so.memory_budget_bytes = total_budget;
          so.flush_fraction = 0.2;
          so.k = 10;
          so.policy = policy;
          so.attribute = attribute;
          so.auto_flush = true;
          so.clock = &clock;
          return so;
        }()),
        engine(&store),
        tweets(stream) {}

  void StreamOne() {
    Microblog blog = tweets.Next();
    clock.Set(blog.created_at);
    ASSERT_TRUE(store.Insert(std::move(blog)).ok());
  }

  SimClock clock;
  MicroblogStore store;
  QueryEngine engine;
  TweetGenerator tweets;
};

/// End-of-run bookkeeping reconciliation for one deployment.
void ReconcileDeployment(Deployment* d, const std::string& label) {
  // Per-shard audit trail vs per-shard PolicyStats.
  for (size_t i = 0; i < d->store.num_shards(); ++i) {
    const FlushPolicy* policy = d->store.shard(i)->policy();
    const Status s =
        ReconcileAuditWithStats(d->audits[i].Records(), policy->stats());
    EXPECT_TRUE(s.ok()) << label << " shard " << i << ": " << s.ToString();
    // Audit records carry their shard's label.
    for (const EvictionAuditRecord& rec : d->audits[i].Records()) {
      ASSERT_EQ(rec.shard, static_cast<int>(i)) << label;
    }
  }

  // Aggregated registry snapshot vs the aggregated stats structs.
  const MetricsSnapshot snap = d->store.AggregatedMetrics();
  const PolicyStats ps = d->store.AggregatedPolicyStats();
  const IngestStats is = d->store.AggregatedIngestStats();
  EXPECT_EQ(snap.counter_or("flush.cycles"), ps.flush_cycles) << label;
  EXPECT_EQ(snap.counter_or("flush.records_flushed"), ps.records_flushed)
      << label;
  EXPECT_EQ(snap.counter_or("flush.postings_dropped"), ps.postings_dropped)
      << label;
  EXPECT_EQ(snap.counter_or("ingest.inserted"), is.inserted) << label;
  EXPECT_EQ(snap.counter_or("ingest.flush_triggers"), is.flush_triggers)
      << label;

  // Routing-layer invariant: every routed copy was inserted by some
  // shard, and every accepted record with terms produced at least one.
  const ShardedIngestStats ss = d->store.sharded_ingest_stats();
  EXPECT_EQ(is.inserted, ss.routed_copies) << label;
  EXPECT_GE(ss.routed_copies, ss.submitted - ss.skipped_no_terms) << label;
}

struct OracleCase {
  PolicyKind policy;
  AttributeKind attribute;
};

std::string CaseName(const ::testing::TestParamInfo<OracleCase>& info) {
  std::string name = std::string(PolicyKindName(info.param.policy)) + "_" +
                     AttributeKindName(info.param.attribute);
  // gtest parameter names must be alphanumeric ("kFlushing-MK" is not).
  std::string clean;
  for (char c : name) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
        (c >= '0' && c <= '9') || c == '_') {
      clean.push_back(c);
    }
  }
  return clean;
}

class ShardOracleTest : public ::testing::TestWithParam<OracleCase> {};

TEST_P(ShardOracleTest, ShardCountIsInvisibleInAnswers) {
  const PolicyKind policy = GetParam().policy;
  const AttributeKind attribute = GetParam().attribute;
  const size_t shards = TestShardCount();

  // A compact but flush-heavy configuration: ~300-byte records against a
  // 256 KiB total budget mean dozens of flush cycles over the run, with a
  // vocabulary small enough that posting lists get real depth.
  TweetGeneratorOptions stream;
  stream.seed = 20160516;  // deterministic; pass-once == pass-always
  stream.vocabulary_size = 3000;
  stream.num_users = 1500;
  stream.num_hotspots = 16;
  const size_t kBudget = 256 * 1024;
  const uint64_t kTweets = attribute == AttributeKind::kKeyword ? 20'000
                                                                : 12'000;
  const uint64_t kProbeEvery = 2'000;
  const size_t kQueriesPerProbe = 25;

  Deployment one(policy, attribute, 1, stream, kBudget);
  Deployment many(policy, attribute, shards, stream, kBudget);
  Baseline base(policy, attribute, stream, kBudget);
  ASSERT_EQ(many.store.num_shards(), shards);

  QueryWorkloadOptions workload;
  workload.seed = 777;
  workload.kind = WorkloadKind::kCorrelated;
  workload.attribute = attribute;
  QueryGenerator queries(workload, stream);

  const std::vector<GeoPoint> hotspots = MakeHotspots(stream);

  uint64_t streamed = 0;
  uint32_t next_k_churn = 14;  // mid-run SetK churn (paper §IV-C)
  while (streamed < kTweets) {
    for (uint64_t i = 0; i < kProbeEvery && streamed < kTweets; ++i) {
      one.StreamOne();
      many.StreamOne();
      base.StreamOne();
      ++streamed;
    }

    // The same query objects probe every deployment.
    for (size_t q = 0; q < kQueriesPerProbe; ++q) {
      const TopKQuery query = queries.Next();
      auto ra = one.store.engine()->Execute(query);
      auto rb = many.store.engine()->Execute(query);
      ASSERT_TRUE(ra.ok()) << DescribeQuery(query);
      ASSERT_TRUE(rb.ok()) << DescribeQuery(query);
      ExpectSameAnswers(ra.value(), rb.value(),
                        "probe@" + std::to_string(streamed) + " " +
                            DescribeQuery(query));
      if (query.type != QueryType::kAnd) {
        // Baseline agreement (AND excluded: the fan-out layer evaluates
        // AND exactly; the baseline hit path serves memory-resident
        // containment, a function of flush timing).
        auto rc = base.engine.Execute(query);
        ASSERT_TRUE(rc.ok()) << DescribeQuery(query);
        ExpectSameAnswers(ra.value(), rc.value(),
                          "baseline@" + std::to_string(streamed) + " " +
                              DescribeQuery(query));
      }
    }

    if (attribute == AttributeKind::kSpatial) {
      // Area fan-out: a box around each of three hotspots — multi-tile
      // OR queries that hit several tile owners at shards > 1.
      for (size_t h = 0; h < 3 && h < hotspots.size(); ++h) {
        const GeoPoint c = hotspots[h];
        auto ra = one.store.engine()->SearchArea(c.lat - 0.08, c.lon - 0.08,
                                                 c.lat + 0.08, c.lon + 0.08);
        auto rb = many.store.engine()->SearchArea(c.lat - 0.08, c.lon - 0.08,
                                                  c.lat + 0.08, c.lon + 0.08);
        auto rc = base.engine.SearchArea(c.lat - 0.08, c.lon - 0.08,
                                         c.lat + 0.08, c.lon + 0.08);
        ASSERT_TRUE(ra.ok());
        ASSERT_TRUE(rb.ok());
        ASSERT_TRUE(rc.ok());
        const std::string label =
            "area hotspot " + std::to_string(h) + "@" +
            std::to_string(streamed);
        ExpectSameAnswers(ra.value(), rb.value(), label);
        ExpectSameAnswers(ra.value(), rc.value(), label + " (baseline)");
      }
    }
    if (attribute == AttributeKind::kUser) {
      // The user surface proper (kSingle over TermForUser).
      for (UserId user = 1; user <= 5; ++user) {
        auto ra = one.store.engine()->SearchUser(user);
        auto rb = many.store.engine()->SearchUser(user);
        auto rc = base.engine.SearchUser(user);
        ASSERT_TRUE(ra.ok());
        ASSERT_TRUE(rb.ok());
        ASSERT_TRUE(rc.ok());
        const std::string label =
            "user " + std::to_string(user) + "@" + std::to_string(streamed);
        ExpectSameAnswers(ra.value(), rb.value(), label);
        ExpectSameAnswers(ra.value(), rc.value(), label + " (baseline)");
      }
    }

    // SetK churn at the halfway probe, applied identically everywhere;
    // policies pick the new k up at their next flush cycle.
    if (streamed >= kTweets / 2 && next_k_churn != 0) {
      one.store.SetK(next_k_churn);
      many.store.SetK(next_k_churn);
      base.store.SetK(next_k_churn);
      next_k_churn = 0;
    }
  }

  // Both deployments consumed the identical stream.
  ASSERT_EQ(one.tweets.generated(), many.tweets.generated());
  ASSERT_EQ(one.store.sharded_ingest_stats().submitted,
            many.store.sharded_ingest_stats().submitted);
  ASSERT_EQ(one.store.sharded_ingest_stats().skipped_no_terms,
            many.store.sharded_ingest_stats().skipped_no_terms);

  // The single-shard deployment must have flushed (otherwise the oracle
  // only ever compared in-memory stores and proves nothing about flush
  // correctness).
  ASSERT_GT(one.store.AggregatedPolicyStats().flush_cycles, 0u);

  ReconcileDeployment(&one, "shards=1");
  ReconcileDeployment(&many, "shards=N");
}

std::vector<OracleCase> AllCases() {
  std::vector<OracleCase> cases;
  for (PolicyKind policy : testing_util::AllPolicies()) {
    for (AttributeKind attribute :
         {AttributeKind::kKeyword, AttributeKind::kSpatial,
          AttributeKind::kUser}) {
      cases.push_back({policy, attribute});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAllAttributes, ShardOracleTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace kflush
