// The crash-recovery differential oracle: killing the process at an
// arbitrary point inside the durable write paths must never lose an
// acked record or change a query answer.
//
// For every flush policy the oracle first runs a PROBE child over a
// deterministic stream to count how many crash-point sites
// (storage/durability.h CrashPoint) the full run passes through, then
// forks one KILL child per seeded kill point. A kill child replays the
// identical stream into a durable MicroblogStore (auto-flush on, so
// segment writes interleave with WAL appends), group-commits every
// kCommitEvery records, reports each acked high-water mark D over a
// pipe, and _exit()s from the crash hook when its countdown reaches
// zero — mid-append, mid-segment-write, or between fsyncs, with stdio
// buffers deliberately not flushed (that unsynced suffix is exactly what
// a crash destroys).
//
// The parent then recovers the directory in-process and requires:
//   1. recovery succeeds (torn tails truncate; never Corruption),
//   2. the recovered records are a contiguous prefix 1..M of the stream
//      with M >= D: nothing acked is lost, and nothing is recovered
//      out of order or with a hole,
//   3. every recovered record body is field-wise identical to what was
//      inserted (whether it landed in memory or a segment),
//   4. single-term and OR top-k answers are field-wise identical to an
//      uninterrupted reference store fed the same prefix 1..M (AND is
//      excluded for the same hit-path reason as the shard oracle), and
//   5. after continued ingest on both stores, the answers still agree —
//      the recovered store is a full peer, not a read-only salvage.

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstdint>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "core/store.h"
#include "gtest/gtest.h"
#include "storage/durability.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::RecordsEqual;
using testing_util::RemoveTree;

constexpr uint64_t kStreamLen = 1200;
constexpr uint64_t kCommitEvery = 25;
constexpr uint64_t kContinueLen = 50;
constexpr size_t kVocab = 40;
constexpr size_t kBudget = 64 * 1024;
constexpr int kKillExit = 137;
constexpr uint32_t kSeedBase = 20160516;  // fixed seed matrix (CI replays)
constexpr size_t kRandomKillPoints = 20;

// Crash-hook plumbing. Plain globals: the hook is a bare function
// pointer, and each forked child installs its own copy-on-write state.
std::atomic<uint64_t> g_countdown{0};
std::atomic<uint64_t> g_sites_seen{0};

void CountingHook(const char*) {
  g_sites_seen.fetch_add(1, std::memory_order_relaxed);
}

void KillingHook(const char*) {
  if (g_countdown.fetch_sub(1, std::memory_order_relaxed) == 1) {
    _exit(kKillExit);  // no stdio flush: the unsynced suffix dies here
  }
}

/// The i-th record of the deterministic stream (1-based, id == i).
Microblog StreamRecord(uint64_t i) {
  return MakeBlog(static_cast<MicroblogId>(i), 1000 + i,
                  {static_cast<KeywordId>(i % kVocab)},
                  1 + (i % 7), "crash stream record " + std::to_string(i));
}

StoreOptions OracleStoreOptions(PolicyKind policy, const std::string& dir) {
  StoreOptions opts;
  opts.memory_budget_bytes = kBudget;
  opts.flush_fraction = 0.2;
  opts.k = 10;
  opts.policy = policy;
  opts.auto_flush = true;  // flush inline: segment writes interleave
  if (!dir.empty()) {
    opts.durability.enabled = true;
    opts.durability.dir = dir;
  }
  return opts;
}

/// Child body: stream records into a durable store, reporting the acked
/// high-water mark after every successful group commit. Runs under
/// whichever crash hook the caller installed; _exit()s always (a forked
/// gtest child must not run the parent's test machinery or atexit).
void RunChild(PolicyKind policy, const std::string& dir, int report_fd) {
  MicroblogStore store(OracleStoreOptions(policy, dir));
  if (!store.durability_status().ok()) _exit(40);
  for (uint64_t i = 1; i <= kStreamLen; ++i) {
    if (!store.Insert(StreamRecord(i)).ok()) _exit(41);
    if (i % kCommitEvery == 0) {
      if (!store.CommitDurable().ok()) _exit(42);
      const uint64_t acked = i;
      if (::write(report_fd, &acked, sizeof(acked)) != sizeof(acked)) {
        _exit(43);
      }
    }
  }
  // Probe protocol: the final value on the pipe is the site count (the
  // kill children never get here — their countdown fires first).
  const uint64_t sites = g_sites_seen.load(std::memory_order_relaxed);
  if (::write(report_fd, &sites, sizeof(sites)) != sizeof(sites)) _exit(43);
  _exit(0);
}

struct ChildRun {
  int exit_code = -1;
  uint64_t last_value = 0;       // last u64 on the pipe
  uint64_t second_last_value = 0;
  size_t values = 0;
};

/// Forks, runs `RunChild` under `hook`, and collects the pipe stream.
ChildRun ForkChild(PolicyKind policy, const std::string& dir,
                   CrashHookFn hook, uint64_t countdown) {
  int fds[2];
  EXPECT_EQ(::pipe(fds), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    g_countdown.store(countdown, std::memory_order_relaxed);
    g_sites_seen.store(0, std::memory_order_relaxed);
    SetCrashHook(hook);
    RunChild(policy, dir, fds[1]);  // never returns
  }
  ::close(fds[1]);
  ChildRun run;
  uint64_t value = 0;
  while (::read(fds[0], &value, sizeof(value)) == sizeof(value)) {
    run.second_last_value = run.last_value;
    run.last_value = value;
    ++run.values;
  }
  ::close(fds[0]);
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  run.exit_code = WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1;
  return run;
}

/// Top-k answer battery: every single-term query plus a ring of OR
/// pairs. AND is excluded — its hit path serves memory-resident
/// containment, a function of flush timing that recovery legitimately
/// re-partitions (the merged single/OR answers are what must not move).
std::vector<TopKQuery> QueryBattery() {
  std::vector<TopKQuery> queries;
  for (size_t t = 0; t < kVocab; ++t) {
    TopKQuery q;
    q.terms = {static_cast<TermId>(t)};
    q.type = QueryType::kSingle;
    q.k = 10;
    queries.push_back(q);
  }
  for (size_t t = 0; t < 10; ++t) {
    TopKQuery q;
    q.terms = {static_cast<TermId>(t),
               static_cast<TermId>((t + 7) % kVocab)};
    q.type = QueryType::kOr;
    q.k = 10;
    queries.push_back(q);
  }
  return queries;
}

void ExpectSameAnswers(QueryEngine* recovered, QueryEngine* reference,
                       const std::string& label) {
  for (const TopKQuery& query : QueryBattery()) {
    auto ra = recovered->Execute(query);
    auto rb = reference->Execute(query);
    ASSERT_TRUE(ra.ok()) << label;
    ASSERT_TRUE(rb.ok()) << label;
    ASSERT_EQ(ra->results.size(), rb->results.size())
        << label << " term " << query.terms[0];
    for (size_t i = 0; i < ra->results.size(); ++i) {
      ASSERT_TRUE(RecordsEqual(ra->results[i], rb->results[i]))
          << label << " term " << query.terms[0] << " position " << i
          << ": recovered id " << ra->results[i].id << " vs reference id "
          << rb->results[i].id;
    }
  }
}

class CrashRecoveryOracleTest
    : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(CrashRecoveryOracleTest, KillAnywhereLosesNoAckedRecord) {
  const PolicyKind policy = GetParam();
  const std::string dir = ::testing::TempDir() + "/kflush_crash_oracle_" +
                          std::string(PolicyKindName(policy));
  const std::string ref_dir = dir + "_ref";

  // Probe: count the crash-point sites one full run passes through.
  RemoveTree(dir);
  const ChildRun probe = ForkChild(policy, dir, CountingHook, 0);
  ASSERT_EQ(probe.exit_code, 0) << "probe child failed";
  const uint64_t total_sites = probe.last_value;
  ASSERT_GT(total_sites, kStreamLen)
      << "durable write paths fired implausibly few crash points";
  // Sanity: the probe's last acked report covers the whole stream.
  ASSERT_EQ(probe.second_last_value, kStreamLen);

  // The kill-point matrix: seeded-random points across the whole run
  // plus pinned extremes (first appends, mid-run, the final site).
  std::mt19937_64 rng(kSeedBase + static_cast<uint32_t>(policy));
  std::uniform_int_distribution<uint64_t> dist(1, total_sites);
  std::set<uint64_t> kill_points = {1, 2, total_sites / 2, total_sites};
  while (kill_points.size() < kRandomKillPoints + 4) {
    kill_points.insert(dist(rng));
  }

  for (const uint64_t kill_point : kill_points) {
    SCOPED_TRACE("kill point " + std::to_string(kill_point) + "/" +
                 std::to_string(total_sites) + " policy " +
                 PolicyKindName(policy));
    RemoveTree(dir);
    const ChildRun victim = ForkChild(policy, dir, KillingHook, kill_point);
    ASSERT_EQ(victim.exit_code, kKillExit) << "child did not die at its "
                                              "countdown";
    const uint64_t acked = victim.last_value;  // 0 if killed pre-commit

    // Recover in-process.
    MicroblogStore recovered(OracleStoreOptions(policy, dir));
    ASSERT_TRUE(recovered.durability_status().ok())
        << recovered.durability_status().ToString();

    // Zero acked-record loss, and the recovered set is the contiguous
    // stream prefix 1..M.
    const MicroblogId M = recovered.recovered_max_id();
    ASSERT_GE(M, acked) << "acked records lost";
    ASSERT_LE(M, kStreamLen);
    uint64_t present = 0;
    for (uint64_t i = 1; i <= M; ++i) {
      const Microblog expected = StreamRecord(i);
      Microblog actual;
      std::optional<Microblog> in_memory = recovered.raw_store()->Get(i);
      if (in_memory.has_value()) {
        actual = *in_memory;
      } else {
        ASSERT_TRUE(recovered.disk()->GetRecord(i, &actual).ok())
            << "record " << i << " missing from both tiers";
      }
      ASSERT_TRUE(RecordsEqual(actual, expected))
          << "record " << i << " corrupted by recovery";
      ++present;
    }
    ASSERT_EQ(present, M);

    // Differential check: an uninterrupted reference store fed the same
    // prefix answers identically.
    RemoveTree(ref_dir);
    MicroblogStore reference(OracleStoreOptions(policy, ref_dir));
    ASSERT_TRUE(reference.durability_status().ok());
    for (uint64_t i = 1; i <= M; ++i) {
      ASSERT_TRUE(reference.Insert(StreamRecord(i)).ok());
    }
    QueryEngine recovered_engine(&recovered);
    QueryEngine reference_engine(&reference);
    ExpectSameAnswers(&recovered_engine, &reference_engine, "post-recovery");

    // Continued ingest: the recovered store keeps behaving like the
    // uninterrupted one.
    for (uint64_t i = M + 1; i <= M + kContinueLen; ++i) {
      ASSERT_TRUE(recovered.Insert(StreamRecord(i)).ok());
      ASSERT_TRUE(reference.Insert(StreamRecord(i)).ok());
    }
    ExpectSameAnswers(&recovered_engine, &reference_engine,
                      "post-recovery continued ingest");
    RemoveTree(ref_dir);
  }
  RemoveTree(dir);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CrashRecoveryOracleTest,
                         ::testing::ValuesIn(testing_util::AllPolicies()),
                         [](const ::testing::TestParamInfo<PolicyKind>& info) {
                           std::string clean;
                           for (char c : std::string(
                                    PolicyKindName(info.param))) {
                             if (std::isalnum(static_cast<unsigned char>(c))) {
                               clean.push_back(c);
                             }
                           }
                           return clean;
                         });

}  // namespace
}  // namespace kflush
