// Concurrency stress: hammer each policy with parallel producers, query
// threads, and the background flusher simultaneously, then verify the
// store's structural invariants survived.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"

namespace kflush {
namespace {

class ConcurrencyStressTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(ConcurrencyStressTest, ParallelIngestFlushQuery) {
  SystemOptions options;
  options.store.memory_budget_bytes = 2 << 20;
  options.store.k = 10;
  options.store.policy = GetParam();
  options.ingest_queue_capacity = 32;
  MicroblogSystem system(options);
  system.Start();

  TweetGeneratorOptions stream;
  stream.seed = 11;
  stream.vocabulary_size = 5'000;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::atomic<uint64_t> queries_done{0};

  // Three query threads with different workloads.
  std::vector<std::thread> query_threads;
  for (int t = 0; t < 3; ++t) {
    query_threads.emplace_back([&, t] {
      QueryWorkloadOptions wopts;
      wopts.seed = 100 + static_cast<uint64_t>(t);
      wopts.kind = t == 0 ? WorkloadKind::kUniform : WorkloadKind::kCorrelated;
      QueryGenerator queries(wopts, stream);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = system.Query(queries.Next());
        if (!result.ok()) query_errors.fetch_add(1);
        queries_done.fetch_add(1);
      }
    });
  }

  // Two producers.
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      TweetGeneratorOptions my_stream = stream;
      my_stream.seed = stream.seed + static_cast<uint64_t>(p) + 1;
      TweetGenerator gen(my_stream);
      for (int batch = 0; batch < 40; ++batch) {
        std::vector<Microblog> blogs;
        gen.FillBatch(500, &blogs);
        if (!system.Submit(std::move(blogs))) return;
      }
    });
  }

  for (auto& t : producers) t.join();
  system.Stop();
  stop.store(true);
  for (auto& t : query_threads) t.join();

  EXPECT_EQ(system.digested(), 2u * 40 * 500);
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_GT(queries_done.load(), 0u);

  MicroblogStore* store = system.store();
  // Invariant: no orphaned records (pcount must stay positive).
  size_t orphans = 0;
  store->raw_store()->ForEach(
      [&](const Microblog&, uint32_t pcount, uint32_t) {
        if (pcount == 0) ++orphans;
      });
  EXPECT_EQ(orphans, 0u);
  // Invariant: raw-store accounting balances with the tracker.
  EXPECT_EQ(store->tracker().ComponentUsed(MemoryComponent::kRawStore),
            store->raw_store()->MemoryBytes());
  // Invariant: memory stayed bounded.
  EXPECT_LT(store->tracker().DataUsed(),
            options.store.memory_budget_bytes * 2);
  // Invariant: every in-memory index reference resolves to a live record.
  std::vector<size_t> sizes;
  store->policy()->CollectEntrySizes(&sizes);
  size_t postings = 0;
  for (size_t s : sizes) postings += s;
  EXPECT_GE(postings, store->raw_store()->size());
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ConcurrencyStressTest,
                         ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                                           PolicyKind::kKFlushing,
                                           PolicyKind::kKFlushingMK),
                         [](const auto& info) {
                           switch (info.param) {
                             case PolicyKind::kFifo:
                               return "Fifo";
                             case PolicyKind::kLru:
                               return "Lru";
                             case PolicyKind::kKFlushing:
                               return "KFlushing";
                             default:
                               return "KFlushingMK";
                           }
                         });

}  // namespace
}  // namespace kflush
