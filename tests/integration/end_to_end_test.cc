// End-to-end integration tests: full stream → steady state → query
// workload runs for every policy, asserting the paper's qualitative
// results hold (kFlushing accumulates more k-filled keywords and a higher
// hit ratio than FIFO) and that answers remain exact across the
// memory/disk boundary.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "gen/query_generator.h"
#include "sim/experiment.h"

namespace kflush {
namespace {

ExperimentConfig SmallConfig(PolicyKind policy, WorkloadKind workload) {
  ExperimentConfig config;
  config.store.memory_budget_bytes = 4 << 20;
  config.store.flush_fraction = 0.10;
  config.store.k = 10;
  config.store.policy = policy;
  config.stream.seed = 1234;
  config.stream.vocabulary_size = 20'000;
  config.stream.num_users = 5'000;
  config.workload.kind = workload;
  config.workload.seed = 777;
  config.steady_state_flushes = 3;
  config.num_queries = 4'000;
  return config;
}

TEST(EndToEndTest, AllPoliciesReachSteadyState) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    auto result =
        RunExperiment(SmallConfig(policy, WorkloadKind::kCorrelated));
    EXPECT_TRUE(result.reached_steady_state) << PolicyKindName(policy);
    EXPECT_EQ(result.query_metrics.queries, 4000u) << PolicyKindName(policy);
    EXPECT_GT(result.num_terms, 0u) << PolicyKindName(policy);
    EXPECT_GT(result.disk_stats.records_written, 0u)
        << PolicyKindName(policy);
    // Memory stayed around the budget.
    EXPECT_LE(result.data_bytes_used, (4u << 20) * 11 / 10)
        << PolicyKindName(policy);
  }
}

TEST(EndToEndTest, KFlushingAccumulatesMoreKFilledKeywords) {
  auto fifo = RunExperiment(
      SmallConfig(PolicyKind::kFifo, WorkloadKind::kCorrelated));
  auto kflushing = RunExperiment(
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated));
  // The paper's headline structural result (Figure 7): kFlushing
  // accumulates a multiple of FIFO's k-filled keywords. (The paper
  // measured up to 7x on real tweets; our synthetic skew yields ~2x —
  // see EXPERIMENTS.md.)
  EXPECT_GT(kflushing.k_filled_terms, fifo.k_filled_terms * 3 / 2);
}

TEST(EndToEndTest, KFlushingBeatsFifoHitRatioOnCorrelatedLoad) {
  auto fifo = RunExperiment(
      SmallConfig(PolicyKind::kFifo, WorkloadKind::kCorrelated));
  auto kflushing = RunExperiment(
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated));
  EXPECT_GT(kflushing.query_metrics.HitRatio(),
            fifo.query_metrics.HitRatio());
}

TEST(EndToEndTest, KFlushingBeatsFifoHitRatioOnUniformLoad) {
  auto fifo =
      RunExperiment(SmallConfig(PolicyKind::kFifo, WorkloadKind::kUniform));
  auto kflushing = RunExperiment(
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kUniform));
  EXPECT_GE(kflushing.query_metrics.HitRatio(),
            fifo.query_metrics.HitRatio());
}

TEST(EndToEndTest, MKImprovesAndQueryHitRatio) {
  auto plain = RunExperiment(
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated));
  auto mk = RunExperiment(
      SmallConfig(PolicyKind::kKFlushingMK, WorkloadKind::kCorrelated));
  // §IV-D: the MK extension exists to lift AND-query hits.
  EXPECT_GE(mk.query_metrics.HitRatioFor(QueryType::kAnd),
            plain.query_metrics.HitRatioFor(QueryType::kAnd));
}

TEST(EndToEndTest, UselessFractionCollapsesUnderKFlushing) {
  auto fifo = RunExperiment(
      SmallConfig(PolicyKind::kFifo, WorkloadKind::kCorrelated));
  auto kflushing = RunExperiment(
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated));
  // Under temporal flushing a large share of memory is beyond-top-k
  // (paper: ~75% on real data at k=20); kFlushing trims it away.
  EXPECT_GT(fifo.frequency.useless_fraction, 0.3);
  EXPECT_LT(kflushing.frequency.useless_fraction,
            fifo.frequency.useless_fraction / 2);
}

TEST(EndToEndTest, Phase1OnlyMemoryTimelineSaturates) {
  // Figure 5(a): with only Phase 1, flushes free less and less, so
  // utilization climbs toward (and past) 100% and stays there. The full
  // three-phase policy keeps a bounded sawtooth under the same stream.
  ExperimentConfig config =
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated);
  config.store.enable_phase2 = false;
  config.store.enable_phase3 = false;
  auto phase1_only = MemoryTimeline(config, 20'000, 40);

  ExperimentConfig full =
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated);
  auto three_phase = MemoryTimeline(full, 20'000, 40);

  // Tail of the phase-1-only run sits at/above full utilization.
  double tail_min = 1e9;
  for (size_t i = 30; i < phase1_only.size(); ++i) {
    tail_min = std::min(tail_min, phase1_only[i]);
  }
  EXPECT_GT(tail_min, 0.95);
  // The full policy dips well below budget after flushes.
  double full_min = 1e9;
  for (size_t i = 30; i < three_phase.size(); ++i) {
    full_min = std::min(full_min, three_phase[i]);
  }
  EXPECT_LT(full_min, 0.95);
}

TEST(EndToEndTest, SingleQueryAnswersMatchGroundTruth) {
  // Exactness across the memory/disk boundary: after steady state, the
  // top-k answer for any keyword must equal the brute-force top-k over
  // everything ever streamed.
  ExperimentConfig config =
      SmallConfig(PolicyKind::kKFlushing, WorkloadKind::kCorrelated);
  config.stream.vocabulary_size = 500;  // denser per-keyword history

  SimClock clock(config.stream.start_time);
  StoreOptions so = config.store;
  so.clock = &clock;
  MicroblogStore store(so);
  QueryEngine engine(&store);
  TweetGenerator gen(config.stream);

  std::map<TermId, std::vector<MicroblogId>> truth;  // newest last
  MicroblogId next_id = 1;
  for (int i = 0; i < 120'000; ++i) {
    Microblog blog = gen.Next();
    blog.id = next_id++;
    clock.Set(blog.created_at);
    for (KeywordId kw : blog.keywords) truth[kw].push_back(blog.id);
    ASSERT_TRUE(store.Insert(std::move(blog)).ok());
  }
  ASSERT_GT(store.ingest_stats().flush_triggers, 0u);

  for (TermId term = 0; term < 50; ++term) {
    auto it = truth.find(term);
    if (it == truth.end()) continue;
    TopKQuery q;
    q.terms = {term};
    q.type = QueryType::kSingle;
    auto result = engine.Execute(q);
    ASSERT_TRUE(result.ok());
    // Expected: most recent k ids = suffix of the truth list, reversed.
    const auto& ids = it->second;
    const size_t expect_n = std::min<size_t>(ids.size(), store.k());
    ASSERT_EQ(result->results.size(), expect_n) << "term " << term;
    for (size_t i = 0; i < expect_n; ++i) {
      EXPECT_EQ(result->results[i].id, ids[ids.size() - 1 - i])
          << "term " << term << " pos " << i;
    }
  }
}

}  // namespace
}  // namespace kflush
