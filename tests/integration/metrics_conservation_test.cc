// Metrics-conservation suite: the registry's cross-layer counters must
// balance exactly for every flushing policy. These are the accounting
// identities the paper's evaluation quietly relies on — if "flushed +
// resident" drifts from "ingested", every hit-ratio and memory figure
// built on those counters is suspect.
//
//   ingest.inserted        == flush.records_flushed + store.resident_records
//   flush.records_flushed  == sum over phases of flush.phaseN.records
//   flush.postings_dropped == sum over phases of flush.phaseN.postings
//                          == disk.postings_added
//   disk.records_written   == flush.records_flushed   (buffer fully drained)
//   query.executed         == query.memory_hits + query.memory_misses
//                          == sum of per-type/per-outcome latency counts

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/query_engine.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "policy/flush_policy.h"
#include "sim/experiment.h"

namespace kflush {
namespace {

// Store + engine + clock bundle (heap-held: SimClock's atomic makes the
// bundle non-movable).
struct Workload {
  SimClock clock{1'000'000};
  std::unique_ptr<MicroblogStore> store;
  std::unique_ptr<QueryEngine> engine;
};

// Streams a small seeded workload (enough inserts to force several flush
// cycles at a 2 MB budget) and a query mix through one store. When `audit`
// is given it is installed before the first insert, so the trail covers
// every flush cycle of the store's lifetime.
std::unique_ptr<Workload> RunWorkload(PolicyKind policy,
                                      EvictionAuditTrail* audit = nullptr) {
  auto owned = std::make_unique<Workload>();
  Workload& run = *owned;
  StoreOptions options;
  options.policy = policy;
  options.k = 10;
  options.memory_budget_bytes = 2 << 20;
  options.clock = &run.clock;
  run.store = std::make_unique<MicroblogStore>(options);
  run.engine = std::make_unique<QueryEngine>(run.store.get());
  if (audit != nullptr) run.store->policy()->set_audit_trail(audit);

  TweetGeneratorOptions stream;
  stream.seed = 20160516;
  stream.vocabulary_size = 10'000;
  stream.num_users = 2'000;
  TweetGenerator tweets(stream);
  for (int i = 0; i < 30'000; ++i) {
    Microblog blog = tweets.Next();
    run.clock.Set(blog.created_at);
    EXPECT_TRUE(run.store->Insert(std::move(blog)).ok());
  }
  EXPECT_GT(run.store->ingest_stats().flush_triggers, 0u)
      << PolicyKindName(policy) << ": workload never filled the budget";

  QueryWorkloadOptions workload;
  workload.seed = 99;
  QueryGenerator queries(workload, stream);
  for (int i = 0; i < 1'000; ++i) {
    run.clock.Advance(1);
    auto outcome = run.engine->Execute(queries.Next());
    EXPECT_TRUE(outcome.ok());
  }
  return owned;
}

uint64_t SumPhases(const MetricsSnapshot& snap, const std::string& field) {
  uint64_t sum = 0;
  for (int i = 1; i <= 3; ++i) {
    sum += snap.counter_or("flush.phase" + std::to_string(i) + "." + field);
  }
  return sum;
}

TEST(MetricsConservationTest, RecordsIngestedEqualFlushedPlusResident) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    auto run = RunWorkload(policy);
    const MetricsSnapshot snap = run->store->metrics_registry()->Snapshot();
    EXPECT_EQ(snap.counter_or("ingest.inserted"),
              snap.counter_or("flush.records_flushed") +
                  static_cast<uint64_t>(snap.gauges.at("store.resident_records")))
        << PolicyKindName(policy);
  }
}

TEST(MetricsConservationTest, PhaseBreakdownSumsToCycleTotals) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    auto run = RunWorkload(policy);
    const MetricsSnapshot snap = run->store->metrics_registry()->Snapshot();
    EXPECT_EQ(snap.counter_or("flush.records_flushed"),
              SumPhases(snap, "records"))
        << PolicyKindName(policy);
    EXPECT_EQ(snap.counter_or("flush.record_bytes_flushed"),
              SumPhases(snap, "record_bytes"))
        << PolicyKindName(policy);
    EXPECT_EQ(snap.counter_or("flush.postings_dropped"),
              SumPhases(snap, "postings"))
        << PolicyKindName(policy);
    EXPECT_GT(snap.counter_or("flush.phase1.runs"), 0u)
        << PolicyKindName(policy);
  }
}

TEST(MetricsConservationTest, EveryDroppedPostingAndRecordReachesDisk) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    auto run = RunWorkload(policy);
    const MetricsSnapshot snap = run->store->metrics_registry()->Snapshot();
    EXPECT_EQ(snap.counter_or("disk.postings_added"),
              snap.counter_or("flush.postings_dropped"))
        << PolicyKindName(policy);
    EXPECT_EQ(snap.counter_or("disk.records_written"),
              snap.counter_or("flush.records_flushed"))
        << PolicyKindName(policy)
        << ": flush buffer not fully drained to disk";
    // No byte-level identity here: flush.record_bytes_flushed counts the
    // in-memory footprint, disk.record_bytes_written the serialized size.
    EXPECT_GT(snap.counter_or("disk.record_bytes_written"), 0u)
        << PolicyKindName(policy);
  }
}

TEST(MetricsConservationTest, QueryHitsPlusMissesEqualQueries) {
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    auto run = RunWorkload(policy);
    const MetricsSnapshot snap = run->store->metrics_registry()->Snapshot();
    const uint64_t executed = snap.counter_or("query.executed");
    EXPECT_EQ(executed, 1'000u) << PolicyKindName(policy);
    EXPECT_EQ(executed, snap.counter_or("query.memory_hits") +
                            snap.counter_or("query.memory_misses"))
        << PolicyKindName(policy);

    // The engine's own snapshot must agree with the registry.
    const QueryMetricsSnapshot qm = run->engine->metrics();
    EXPECT_EQ(qm.queries, executed) << PolicyKindName(policy);
    EXPECT_EQ(qm.memory_hits, snap.counter_or("query.memory_hits"))
        << PolicyKindName(policy);
    uint64_t by_type = 0, hits_by_type = 0;
    for (int i = 0; i < 3; ++i) {
      by_type += qm.queries_by_type[i];
      hits_by_type += qm.hits_by_type[i];
    }
    EXPECT_EQ(by_type, qm.queries) << PolicyKindName(policy);
    EXPECT_EQ(hits_by_type, qm.memory_hits) << PolicyKindName(policy);

    // Per-type/per-outcome latency histograms partition the queries.
    uint64_t latency_samples = 0;
    for (const char* type : {"single", "and", "or"}) {
      for (const char* outcome : {"hit", "miss"}) {
        const std::string name = std::string("query.latency_micros.") + type +
                                 "." + outcome;
        auto it = snap.histograms.find(name);
        if (it != snap.histograms.end()) latency_samples += it->second.count();
      }
    }
    EXPECT_EQ(latency_samples, executed) << PolicyKindName(policy);
  }
}

TEST(MetricsConservationTest, EvictionAuditReconcilesAcrossFullWorkload) {
  // The audit trail is one more accounting view over the same flush work;
  // after thousands of inserts and many real flush cycles its per-phase
  // sums must still match PhaseStats to the byte, for every policy.
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    EvictionAuditTrail audit;
    auto run = RunWorkload(policy, &audit);
    ASSERT_GT(audit.size(), 0u) << PolicyKindName(policy);
    const Status s = ReconcileAuditWithStats(audit.Records(),
                                             run->store->policy()->stats());
    EXPECT_TRUE(s.ok()) << PolicyKindName(policy) << ": " << s.ToString();

    // The audit's byte total is the flush layer's contribution to the
    // registry's freed-bytes counter.
    uint64_t audited_bytes = 0;
    for (const EvictionAuditRecord& r : audit.Records()) {
      audited_bytes += r.bytes_freed;
    }
    const MetricsSnapshot snap = run->store->metrics_registry()->Snapshot();
    EXPECT_EQ(audited_bytes, SumPhases(snap, "bytes_freed"))
        << PolicyKindName(policy);
  }
}

TEST(MetricsConservationTest, ExperimentAuditModeReconciles) {
  // The sim/experiment plumbing behind `kflushctl trace`: audit_evictions
  // wires a trail through the whole experiment and reports reconciliation
  // in the result.
  ExperimentConfig config;
  config.store.policy = PolicyKind::kKFlushing;
  config.store.memory_budget_bytes = 2 << 20;
  config.store.k = 10;
  config.stream.vocabulary_size = 5'000;
  config.stream.num_users = 1'000;
  config.steady_state_flushes = 2;
  config.num_queries = 500;
  config.audit_evictions = true;
  const ExperimentResult result = RunExperiment(config);
  EXPECT_GT(result.eviction_audit.size(), 0u);
  EXPECT_TRUE(result.audit_reconciliation.ok())
      << result.audit_reconciliation.ToString();
}

}  // namespace
}  // namespace kflush
