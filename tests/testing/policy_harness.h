// Wiring harness for exercising FlushPolicy implementations directly.

#ifndef KFLUSH_TESTS_TESTING_POLICY_HARNESS_H_
#define KFLUSH_TESTS_TESTING_POLICY_HARNESS_H_

#include <memory>
#include <vector>

#include "policy/policy_factory.h"
#include "storage/sim_disk_store.h"
#include "testing/test_util.h"

namespace kflush {
namespace testing_util {

/// Assembles the shared infrastructure a policy needs, plus ingest helpers.
/// Uses a SimClock advanced by 1µs per ingest so arrival order is total.
class PolicyHarness {
 public:
  explicit PolicyHarness(size_t budget_bytes = 8 << 20)
      : tracker_(budget_bytes),
        raw_(&tracker_),
        buffer_(&tracker_),
        clock_(1000),
        extractor_(MakeAttribute(AttributeKind::kKeyword)) {}

  PolicyContext ctx() {
    PolicyContext c;
    c.raw_store = &raw_;
    c.disk_store = &disk_;
    c.flush_buffer = &buffer_;
    c.tracker = &tracker_;
    c.clock = &clock_;
    c.extractor = extractor_.get();
    return c;
  }

  std::unique_ptr<FlushPolicy> Make(PolicyKind kind, uint32_t k,
                                    size_t fifo_segment_bytes = 64 * 1024) {
    PolicyOptions opts;
    opts.k = k;
    opts.fifo_segment_bytes = fifo_segment_bytes;
    return MakePolicy(kind, ctx(), opts);
  }

  /// Ingests a microblog with the given keywords through the full path:
  /// raw store Put (pcount = #keywords) + policy Insert, temporal score.
  void Ingest(FlushPolicy* policy, MicroblogId id,
              std::vector<KeywordId> keywords) {
    clock_.Advance(1);
    Microblog blog = MakeBlog(id, clock_.NowMicros(), std::move(keywords));
    std::vector<TermId> terms(blog.keywords.begin(), blog.keywords.end());
    auto s = raw_.Put(blog, static_cast<uint32_t>(terms.size()));
    if (!s.ok()) abort();
    policy->Insert(blog, terms, static_cast<double>(blog.created_at));
  }

  /// Queries a term as a user query (recency recorded), returning ids.
  std::vector<MicroblogId> Query(FlushPolicy* policy, TermId term,
                                 size_t limit) {
    clock_.Advance(1);
    std::vector<MicroblogId> ids;
    policy->QueryTerm(term, limit, &ids, /*record_access=*/true);
    return ids;
  }

  MemoryTracker& tracker() { return tracker_; }
  RawDataStore& raw() { return raw_; }
  SimDiskStore& disk() { return disk_; }
  FlushBuffer& buffer() { return buffer_; }
  SimClock& clock() { return clock_; }

 private:
  MemoryTracker tracker_;
  RawDataStore raw_;
  SimDiskStore disk_;
  FlushBuffer buffer_;
  SimClock clock_;
  std::unique_ptr<AttributeExtractor> extractor_;
};

}  // namespace testing_util
}  // namespace kflush

#endif  // KFLUSH_TESTS_TESTING_POLICY_HARNESS_H_
