// Shared helpers for kflush tests.

#ifndef KFLUSH_TESTS_TESTING_TEST_UTIL_H_
#define KFLUSH_TESTS_TESTING_TEST_UTIL_H_

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/store.h"
#include "model/microblog.h"

namespace kflush {
namespace testing_util {

/// A microblog with the given keywords, timestamp, and ~realistic size.
inline Microblog MakeBlog(MicroblogId id, Timestamp ts,
                          std::vector<KeywordId> keywords, UserId user = 1,
                          std::string text = "synthetic test microblog") {
  Microblog blog;
  blog.id = id;
  blog.created_at = ts;
  blog.user_id = user;
  blog.keywords = std::move(keywords);
  blog.text = std::move(text);
  return blog;
}

/// A geotagged microblog.
inline Microblog MakeGeoBlog(MicroblogId id, Timestamp ts, double lat,
                             double lon, UserId user = 1) {
  Microblog blog = MakeBlog(id, ts, {}, user);
  blog.has_location = true;
  blog.location = {lat, lon};
  return blog;
}

/// Store options sized for fast unit tests.
inline StoreOptions SmallStoreOptions(PolicyKind policy,
                                      size_t budget = 256 * 1024,
                                      uint32_t k = 5) {
  StoreOptions opts;
  opts.memory_budget_bytes = budget;
  opts.flush_fraction = 0.2;
  opts.k = k;
  opts.policy = policy;
  opts.auto_flush = false;  // tests trigger flushes explicitly
  return opts;
}

/// Ingests `n` microblogs where blog i carries keyword (i % distinct).
/// Ids are assigned by the store; timestamps increase.
inline void FillRoundRobin(MicroblogStore* store, size_t n, size_t distinct,
                           Timestamp start_ts = 1000) {
  for (size_t i = 0; i < n; ++i) {
    Microblog blog;
    blog.created_at = start_ts + i;
    blog.user_id = 1 + (i % 7);
    blog.keywords = {static_cast<KeywordId>(i % distinct)};
    blog.text = "round robin filler text for realistic record size";
    auto s = store->Insert(std::move(blog));
    if (!s.ok()) abort();
  }
}

/// All policy kinds, for parameterized suites.
inline std::vector<PolicyKind> AllPolicies() {
  return {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
          PolicyKind::kKFlushingMK};
}

/// Field-wise record equality (Microblog has no operator==): the
/// differential oracle's definition of "byte-identical answers".
inline bool RecordsEqual(const Microblog& a, const Microblog& b) {
  return a.id == b.id && a.created_at == b.created_at &&
         a.user_id == b.user_id && a.follower_count == b.follower_count &&
         a.has_location == b.has_location &&
         (!a.has_location || (a.location.lat == b.location.lat &&
                              a.location.lon == b.location.lon)) &&
         a.text == b.text && a.keywords == b.keywords;
}

/// Recursively deletes `path` (file or directory tree). Durability tests
/// use per-test directories (WAL + segment files) under TempDir().
inline void RemoveTree(const std::string& path) {
  struct stat st;
  if (::lstat(path.c_str(), &st) != 0) return;
  if (S_ISDIR(st.st_mode)) {
    if (DIR* d = ::opendir(path.c_str())) {
      while (struct dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name == "." || name == "..") continue;
        RemoveTree(path + "/" + name);
      }
      ::closedir(d);
    }
    ::rmdir(path.c_str());
  } else {
    std::remove(path.c_str());
  }
}

/// Shard count for the sharded differential tests: the KFLUSH_TEST_SHARDS
/// environment variable when set (the CI matrix runs the tier-1 shard leg
/// at 1 and 4), else 4. Values below 1 fall back to the default.
inline size_t TestShardCount() {
  const char* env = std::getenv("KFLUSH_TEST_SHARDS");
  if (env != nullptr && *env != '\0') {
    const long v = std::atol(env);
    if (v >= 1) return static_cast<size_t>(v);
  }
  return 4;
}

}  // namespace testing_util
}  // namespace kflush

#endif  // KFLUSH_TESTS_TESTING_TEST_UTIL_H_
