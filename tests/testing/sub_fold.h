// DeltaFolder: the consumer-side model of a subscription's delta stream,
// shared by the subscription unit tests, the 500-seed fold property test,
// the standing-query differential oracle, and the network loopback tests.
// Folding is strict: every delta must have the next contiguous sequence
// number, an enter may not duplicate a current member, an exit must name a
// current member at its recorded score, and the folded set stays sorted in
// the engine's (score desc, id desc) materialization order. Any violation
// is a protocol bug, reported as a failed AssertionResult with the
// offending delta.

#ifndef KFLUSH_TESTS_TESTING_SUB_FOLD_H_
#define KFLUSH_TESTS_TESTING_SUB_FOLD_H_

#include <algorithm>
#include <string>
#include <unordered_map>
#include <vector>

#include "gtest/gtest.h"
#include "sub/subscription.h"

namespace kflush {
namespace testing_util {

class DeltaFolder {
 public:
  ::testing::AssertionResult Apply(const SubDelta& delta) {
    if (delta.seq != next_seq_) {
      return ::testing::AssertionFailure()
             << "seq gap: got " << delta.seq << ", want " << next_seq_;
    }
    ++next_seq_;
    switch (delta.kind) {
      case SubDeltaKind::kEnter: {
        if (IsMember(delta.id)) {
          return ::testing::AssertionFailure()
                 << "duplicate enter for id " << delta.id << " at seq "
                 << delta.seq;
        }
        if (delta.record.id != delta.id) {
          return ::testing::AssertionFailure()
                 << "enter delta seq " << delta.seq << " carries record id "
                 << delta.record.id << " != delta id " << delta.id;
        }
        SubMember incoming{delta.score, delta.id};
        auto pos = std::lower_bound(
            members_.begin(), members_.end(), incoming,
            [](const SubMember& a, const SubMember& b) {
              return SubMemberBetter(a.score, a.id, b.score, b.id);
            });
        members_.insert(pos, incoming);
        records_[delta.id] = delta.record;
        return ::testing::AssertionSuccess();
      }
      case SubDeltaKind::kExit: {
        auto it = std::find_if(members_.begin(), members_.end(),
                               [&](const SubMember& m) {
                                 return m.id == delta.id;
                               });
        if (it == members_.end()) {
          return ::testing::AssertionFailure()
                 << "exit for non-member id " << delta.id << " at seq "
                 << delta.seq;
        }
        if (it->score != delta.score) {
          return ::testing::AssertionFailure()
                 << "exit for id " << delta.id << " at score " << delta.score
                 << " but member holds score " << it->score;
        }
        members_.erase(it);
        records_.erase(delta.id);
        return ::testing::AssertionSuccess();
      }
      case SubDeltaKind::kTerminal:
        terminated_ = true;
        return ::testing::AssertionSuccess();
    }
    return ::testing::AssertionFailure()
           << "unknown delta kind " << static_cast<int>(delta.kind)
           << " at seq " << delta.seq;
  }

  ::testing::AssertionResult ApplyAll(const std::vector<SubDelta>& deltas) {
    for (const SubDelta& delta : deltas) {
      ::testing::AssertionResult r = Apply(delta);
      if (!r) return r;
    }
    return ::testing::AssertionSuccess();
  }

  bool IsMember(MicroblogId id) const {
    return std::any_of(members_.begin(), members_.end(),
                       [&](const SubMember& m) { return m.id == id; });
  }

  /// Folded standing result, best-first (maintained sorted).
  const std::vector<SubMember>& members() const { return members_; }

  /// The full record each current member entered with.
  const std::unordered_map<MicroblogId, Microblog>& records() const {
    return records_;
  }

  uint64_t deltas_applied() const { return next_seq_ - 1; }
  bool terminated() const { return terminated_; }

  /// Exact (score, id) comparison against a reference top-k, best-first.
  ::testing::AssertionResult MatchesReference(
      const std::vector<SubMember>& expect) const {
    if (members_.size() != expect.size()) {
      return ::testing::AssertionFailure()
             << "folded size " << members_.size() << " != reference size "
             << expect.size();
    }
    for (size_t i = 0; i < expect.size(); ++i) {
      if (members_[i].id != expect[i].id ||
          members_[i].score != expect[i].score) {
        return ::testing::AssertionFailure()
               << "rank " << i << ": folded (" << members_[i].score << ", "
               << members_[i].id << ") != reference (" << expect[i].score
               << ", " << expect[i].id << ")";
      }
    }
    return ::testing::AssertionSuccess();
  }

 private:
  uint64_t next_seq_ = 1;
  std::vector<SubMember> members_;
  std::unordered_map<MicroblogId, Microblog> records_;
  bool terminated_ = false;
};

}  // namespace testing_util
}  // namespace kflush

#endif  // KFLUSH_TESTS_TESTING_SUB_FOLD_H_
