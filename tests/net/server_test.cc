// Loopback tests for the epoll front-end (net/server.h): live TCP
// request/response for every message type, explicit-NACK admission when
// shard queues are full, protocol-driven shutdown, and the
// offered == acked + skipped + nacked accounting invariant.

#include "net/server.h"

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "testing/test_util.h"

namespace kflush {
namespace net {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

ShardedSystemOptions SystemOptionsFor(size_t shards, size_t queue_capacity) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 1 << 20);
  options.system.ingest_queue_capacity = queue_capacity;
  options.num_shards = shards;
  return options;
}

std::unique_ptr<NetClient> MustConnect(const NetServer& server) {
  auto client = NetClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

TEST(NetServer, PingStatsAndQueryOverLoopback) {
  ShardedMicroblogSystem system(SystemOptionsFor(2, 64));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  auto client = MustConnect(server);
  EXPECT_TRUE(client->Ping().ok());

  std::vector<Microblog> blogs;
  for (int i = 0; i < 20; ++i) {
    blogs.push_back(MakeBlog(kInvalidMicroblogId, 0, {static_cast<KeywordId>(
                                                         100 + i % 2)}));
  }
  auto ack = client->Ingest(blogs);
  ASSERT_TRUE(ack.ok()) << ack.status().ToString();
  ASSERT_EQ(ack->type, MsgType::kIngestAck);
  EXPECT_EQ(ack->admitted, 20u);
  EXPECT_EQ(ack->skipped, 0u);

  // Wait for digestion, then read every record back over the wire.
  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TopKQuery query;
  query.terms = {100};
  query.k = 64;
  auto result = client->Query(query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->results.size(), 10u);

  auto stats_json = client->Stats();
  ASSERT_TRUE(stats_json.ok());
  EXPECT_NE(stats_json->find("\"records_acked\":20"), std::string::npos)
      << *stats_json;

  const NetServer::Stats stats = server.stats();
  EXPECT_EQ(stats.records_offered, 20u);
  EXPECT_EQ(stats.records_acked, 20u);
  EXPECT_EQ(stats.records_nacked, 0u);
  server.Stop();
  system.Stop();
}

// A full shard queue produces an explicit kOverloaded NACK carrying the
// queue depth — and the rejected batch is nowhere in the system. The
// system is not Start()ed while the queue is loaded, so depths hold
// still; digestion is released afterwards and the records ack'd then
// must all be queryable (no silent drop across the accept/reject edge).
TEST(NetServer, FullQueueNacksExplicitlyAndRetrySucceeds) {
  ShardedMicroblogSystem system(SystemOptionsFor(1, 1));
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  std::vector<Microblog> batch = {MakeBlog(kInvalidMicroblogId, 0, {7})};
  auto first = client->Ingest(batch);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->type, MsgType::kIngestAck);

  auto second = client->Ingest(batch);
  ASSERT_TRUE(second.ok());
  ASSERT_EQ(second->type, MsgType::kNack);
  EXPECT_EQ(second->reason, NackReason::kOverloaded);
  EXPECT_GE(second->queue_depth, 1u);
  EXPECT_EQ(system.accepted(), 1u);

  // Release digestion; the retry of the NACKed batch must now land.
  system.Start();
  bool retry_acked = false;
  for (int attempt = 0; attempt < 200 && !retry_acked; ++attempt) {
    auto retry = client->Ingest(batch);
    ASSERT_TRUE(retry.ok());
    if (retry->type == MsgType::kIngestAck) {
      retry_acked = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  ASSERT_TRUE(retry_acked);

  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  TopKQuery query;
  query.terms = {7};
  query.k = 16;
  auto result = client->Query(query);
  ASSERT_TRUE(result.ok());
  // Exactly the two acked copies — the NACKed batch left nothing behind.
  EXPECT_EQ(result->results.size(), 2u);

  const NetServer::Stats stats = server.stats();
  EXPECT_EQ(stats.records_offered,
            stats.records_acked + stats.records_skipped +
                stats.records_nacked);
  EXPECT_GE(stats.nacks_overloaded, 1u);
  server.Stop();
  system.Stop();
}

TEST(NetServer, SoftLimitNacksBeforeRouting) {
  ShardedSystemOptions system_options = SystemOptionsFor(1, 8);
  ShardedMicroblogSystem system(system_options);  // not started: queue holds
  ServerOptions server_options;
  server_options.admission_queue_soft_limit = 1;
  NetServer server(&system, server_options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  std::vector<Microblog> batch = {MakeBlog(kInvalidMicroblogId, 0, {7})};
  ASSERT_EQ(client->Ingest(batch)->type, MsgType::kIngestAck);
  auto nack = client->Ingest(batch);
  ASSERT_TRUE(nack.ok());
  ASSERT_EQ(nack->type, MsgType::kNack);
  EXPECT_EQ(nack->reason, NackReason::kOverloaded);
  EXPECT_EQ(nack->queue_depth, 1u);
  server.Stop();
  system.Stop();
}

TEST(NetServer, OversizedBatchAndStoppedSystemNack) {
  ShardedMicroblogSystem system(SystemOptionsFor(1, 8));
  system.Start();
  ServerOptions options;
  options.max_batch_records = 4;
  NetServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  std::vector<Microblog> big(5, MakeBlog(kInvalidMicroblogId, 0, {7}));
  auto nack = client->Ingest(big);
  ASSERT_TRUE(nack.ok());
  ASSERT_EQ(nack->type, MsgType::kNack);
  EXPECT_EQ(nack->reason, NackReason::kTooLarge);

  system.Stop();
  std::vector<Microblog> batch = {MakeBlog(kInvalidMicroblogId, 0, {7})};
  nack = client->Ingest(batch);
  ASSERT_TRUE(nack.ok());
  ASSERT_EQ(nack->type, MsgType::kNack);
  EXPECT_EQ(nack->reason, NackReason::kStopped);
  server.Stop();
}

// Garbage on the wire gets an explicit malformed NACK and the connection
// is closed — the stream cannot be trusted past a framing error.
TEST(NetServer, GarbageFrameNacksThenCloses) {
  ShardedMicroblogSystem system(SystemOptionsFor(1, 8));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  // An implausible frame header (huge declared length).
  std::string garbage(64, '\xFF');
  ASSERT_TRUE(client->SendRaw(garbage).ok());
  auto reply = client->RecvMessage();
  ASSERT_TRUE(reply.ok()) << reply.status().ToString();
  EXPECT_EQ(reply->type, MsgType::kNack);
  EXPECT_EQ(reply->reason, NackReason::kMalformed);
  // Server closes after the NACK flushes.
  auto eof = client->RecvMessage();
  EXPECT_FALSE(eof.ok());

  // A fresh connection still works: the bad stream hurt only itself.
  auto fresh = MustConnect(server);
  EXPECT_TRUE(fresh->Ping().ok());
  server.Stop();
  system.Stop();
}

TEST(NetServer, ProtocolShutdownStopsTheServer) {
  ShardedMicroblogSystem system(SystemOptionsFor(1, 8));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);
  EXPECT_TRUE(client->Shutdown().ok());
  server.AwaitStop();
  EXPECT_FALSE(server.running());
  server.Stop();
  // A double Stop and a post-stop Stop are no-ops.
  server.Stop();
  system.Stop();
}

}  // namespace
}  // namespace net
}  // namespace kflush
