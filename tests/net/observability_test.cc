// End-to-end observability tests for the network path: stage-latency
// histograms that reconcile exactly to the acked-request count, the
// kStatsProm Prometheus exposition, kHealth lifecycle transitions, and
// the request-id flow arc linking the reactor thread to the shard
// digestion thread in the trace.

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/trace.h"
#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "testing/test_util.h"

namespace kflush {
namespace net {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr const char* kStageHistograms[] = {
    "net.ingest_ack_micros.decode", "net.ingest_ack_micros.admission",
    "net.ingest_ack_micros.commit", "net.ingest_ack_micros.respond"};

ShardedSystemOptions SystemOptionsFor(size_t shards, size_t queue_capacity) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 1 << 20);
  options.system.ingest_queue_capacity = queue_capacity;
  options.num_shards = shards;
  return options;
}

std::unique_ptr<NetClient> MustConnect(const NetServer& server) {
  auto client = NetClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

// Every acked ingest lands exactly one sample in each of the four stage
// histograms — mixed with NACKed requests, which must land in none.
TEST(NetObservability, StageHistogramsReconcileToAckedRequests) {
  ShardedMicroblogSystem system(SystemOptionsFor(2, 64));
  system.Start();
  ServerOptions options;
  options.max_batch_records = 4;
  NetServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  uint64_t acks = 0;
  for (int i = 0; i < 12; ++i) {
    std::vector<Microblog> batch(
        i % 3 == 2 ? 5 : 2,  // every third batch oversized -> NACK
        MakeBlog(kInvalidMicroblogId, 0, {static_cast<KeywordId>(7 + i)}));
    auto reply = client->Ingest(batch);
    ASSERT_TRUE(reply.ok()) << reply.status().ToString();
    if (reply->type == MsgType::kIngestAck) ++acks;
  }
  ASSERT_EQ(acks, 8u);

  // The respond stamp is drained on the reactor thread after the write;
  // a follow-up round trip guarantees the loop has passed that point.
  ASSERT_TRUE(client->Ping().ok());
  // The commit stage is recorded by the digestion thread at durable
  // commit of the last sub-batch; wait for digestion to quiesce.
  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  const MetricsSnapshot snap = server.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.counter_or("net.ingest_acks"), acks);
  EXPECT_EQ(snap.counter_or("net.ingest_requests"), 12u);
  for (const char* name : kStageHistograms) {
    ASSERT_EQ(snap.histograms.count(name), 1u) << name;
    EXPECT_EQ(snap.histograms.at(name).count(), acks) << name;
  }
  server.Stop();
  system.Stop();
}

// The kStatsProm reply is a well-formed exposition containing the net
// families; the legacy JSON stats and the registry agree on every count.
TEST(NetObservability, StatsPromExpositionOverLoopback) {
  ShardedMicroblogSystem system(SystemOptionsFor(2, 64));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  std::vector<Microblog> batch(3, MakeBlog(kInvalidMicroblogId, 0, {9}));
  ASSERT_EQ(client->Ingest(batch)->type, MsgType::kIngestAck);

  auto prom = client->StatsProm();
  ASSERT_TRUE(prom.ok()) << prom.status().ToString();
  EXPECT_NE(prom->find("# TYPE kflush_net_records_acked counter\n"
                       "kflush_net_records_acked 3\n"),
            std::string::npos)
      << *prom;
  EXPECT_NE(prom->find("# TYPE kflush_net_connections_live gauge\n"),
            std::string::npos);
  EXPECT_NE(
      prom->find("# TYPE kflush_net_ingest_ack_micros_decode histogram\n"),
      std::string::npos);
  EXPECT_NE(prom->find("kflush_net_ingest_ack_micros_decode_count 1\n"),
            std::string::npos);
  // Store-side families ride along (two shards -> aggregated + per-shard).
  EXPECT_NE(prom->find("kflush_ingest_inserted"), std::string::npos);
  EXPECT_NE(prom->find("kflush_shard0_"), std::string::npos);
  // No raw dotted names leak outside # HELP lines.
  EXPECT_EQ(prom->find("\nnet.records_acked"), std::string::npos);

  // The JSON stats view derives from the same registry counters.
  const NetServer::Stats stats = server.stats();
  EXPECT_EQ(stats.records_offered, 3u);
  EXPECT_EQ(stats.records_acked, 3u);
  EXPECT_EQ(stats.records_offered,
            stats.records_acked + stats.records_skipped +
                stats.records_nacked);
  server.Stop();
  system.Stop();
}

// kHealth reports kServing while up and kDraining once a protocol
// shutdown has been accepted.
TEST(NetObservability, HealthTransitionsServingToDraining) {
  ShardedMicroblogSystem system(SystemOptionsFor(1, 8));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  auto health = client->Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->state, ServingState::kServing);

  ASSERT_TRUE(client->Shutdown().ok());
  server.AwaitStop();
  EXPECT_EQ(server.health(), ServingState::kDraining);
  server.Stop();
  system.Stop();
}

// The trace holds a flow arc keyed by the wire request id: begin on the
// reactor thread at admission, a step on the shard digestion thread, an
// end at durable commit, and a respond-side step at the ack write — and
// the arc demonstrably crosses threads.
TEST(NetObservability, RequestFlowArcLinksReactorToDigestion) {
  Tracer* tracer = Tracer::Global();
  tracer->ResetForTesting();
  tracer->Start();

  ShardedMicroblogSystem system(SystemOptionsFor(2, 64));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  std::vector<Microblog> batch(4, MakeBlog(kInvalidMicroblogId, 0, {11}));
  auto ack = client->Ingest(batch);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, MsgType::kIngestAck);
  ASSERT_TRUE(client->Ping().ok());  // reactor past the ack write
  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  server.Stop();
  system.Stop();
  tracer->Stop();

  // NetClient numbers requests from 1; the ingest was the first frame.
  constexpr uint64_t kIngestRequestId = 1;
  bool saw_start = false, saw_end = false;
  std::set<uint32_t> flow_tids;
  for (const TraceEvent& e : tracer->Snapshot()) {
    if (e.flow_id != kIngestRequestId) continue;
    if (e.type == TraceEventType::kFlowStart) saw_start = true;
    if (e.type == TraceEventType::kFlowEnd) saw_end = true;
    if (e.type == TraceEventType::kFlowStart ||
        e.type == TraceEventType::kFlowStep ||
        e.type == TraceEventType::kFlowEnd) {
      flow_tids.insert(e.tid);
    }
  }
  EXPECT_TRUE(saw_start) << "no flow begin at admission";
  EXPECT_TRUE(saw_end) << "no flow end at durable commit";
  EXPECT_GE(flow_tids.size(), 2u)
      << "flow arc never left the reactor thread";
  tracer->ResetForTesting();
}

}  // namespace
}  // namespace net
}  // namespace kflush
