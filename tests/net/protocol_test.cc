// Wire-protocol unit tests (net/protocol.h): encode/decode round-trips
// for every message type, stream reassembly via PeekFrame, and rejection
// of corrupt, truncated, and trailing-garbage frames.

#include "net/protocol.h"

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "storage/durability.h"
#include "testing/test_util.h"

namespace kflush {
namespace net {
namespace {

using testing_util::MakeBlog;
using testing_util::RecordsEqual;

Message DecodeOne(const std::string& wire) {
  size_t frame_len = 0;
  EXPECT_EQ(PeekFrame(wire.data(), wire.size(), kMaxFramePayloadBytes,
                      &frame_len),
            FrameStatus::kFrame);
  EXPECT_EQ(frame_len, wire.size());
  Message message;
  EXPECT_TRUE(DecodeMessage(wire.data(), frame_len, &message).ok());
  return message;
}

TEST(NetProtocol, EmptyMessagesRoundTrip) {
  for (MsgType type : {MsgType::kPing, MsgType::kPong, MsgType::kStats,
                       MsgType::kShutdown, MsgType::kShutdownAck,
                       MsgType::kStatsProm, MsgType::kHealth}) {
    std::string wire;
    EncodeEmpty(type, 42, &wire);
    const Message m = DecodeOne(wire);
    EXPECT_EQ(m.type, type);
    EXPECT_EQ(m.request_id, 42u);
  }
}

TEST(NetProtocol, HealthResultRoundTrip) {
  for (ServingState state : {ServingState::kStarting, ServingState::kServing,
                             ServingState::kDraining}) {
    std::string wire;
    EncodeHealthResult(77, state, 123'456'789, &wire);
    const Message m = DecodeOne(wire);
    EXPECT_EQ(m.type, MsgType::kHealthResult);
    EXPECT_EQ(m.request_id, 77u);
    EXPECT_EQ(m.health, state);
    EXPECT_EQ(m.uptime_micros, 123'456'789u);
  }
}

TEST(NetProtocol, HealthResultRejectsBadState) {
  // A checksum-valid kHealthResult with a state byte outside the enum is
  // malformed, not silently coerced.
  for (uint8_t raw_state : {uint8_t{0}, uint8_t{4}, uint8_t{255}}) {
    std::string payload;
    payload.push_back(static_cast<char>(MsgType::kHealthResult));
    payload.append(8, '\0');  // request id
    payload.push_back(static_cast<char>(raw_state));
    payload.append(8, '\0');  // uptime
    std::string wire;
    AppendFrame(payload.data(), payload.size(), &wire);
    Message m;
    EXPECT_FALSE(DecodeMessage(wire.data(), wire.size(), &m).ok())
        << "state " << static_cast<int>(raw_state);
  }
}

TEST(NetProtocol, IngestRoundTripsRecords) {
  std::vector<Microblog> blogs;
  blogs.push_back(MakeBlog(7, 1000, {1, 2, 3}, 9, "hello"));
  blogs.push_back(MakeBlog(8, 1001, {}, 10, ""));
  Microblog geo = MakeBlog(9, 1002, {4}, 11, "geo");
  geo.has_location = true;
  geo.location = {12.5, -33.25};
  geo.follower_count = 77;
  blogs.push_back(geo);

  std::string wire;
  EncodeIngest(0xDEADBEEFull, blogs, &wire);
  const Message m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kIngest);
  EXPECT_EQ(m.request_id, 0xDEADBEEFull);
  ASSERT_EQ(m.blogs.size(), blogs.size());
  for (size_t i = 0; i < blogs.size(); ++i) {
    EXPECT_TRUE(RecordsEqual(m.blogs[i], blogs[i])) << "record " << i;
  }
}

TEST(NetProtocol, AckNackAndQueryRoundTrip) {
  std::string wire;
  EncodeIngestAck(5, 100, 3, &wire);
  Message m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kIngestAck);
  EXPECT_EQ(m.admitted, 100u);
  EXPECT_EQ(m.skipped, 3u);

  wire.clear();
  EncodeNack(6, NackReason::kOverloaded, 128, &wire);
  m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kNack);
  EXPECT_EQ(m.reason, NackReason::kOverloaded);
  EXPECT_EQ(m.queue_depth, 128u);

  TopKQuery query;
  query.terms = {11, 22, 33};
  query.type = QueryType::kOr;
  query.k = 50;
  wire.clear();
  EncodeQuery(7, query, &wire);
  m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kQuery);
  EXPECT_EQ(m.query.terms, query.terms);
  EXPECT_EQ(m.query.type, QueryType::kOr);
  EXPECT_EQ(m.query.k, 50u);
}

TEST(NetProtocol, QueryResultAndStatsRoundTrip) {
  QueryResult result;
  result.results.push_back(MakeBlog(1, 10, {5}));
  result.results.push_back(MakeBlog(2, 11, {5}));
  result.memory_hit = true;
  result.from_memory = 2;
  result.from_disk = 0;
  std::string wire;
  EncodeQueryResult(8, result, &wire);
  Message m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kQueryResult);
  EXPECT_TRUE(m.memory_hit);
  EXPECT_EQ(m.from_memory, 2u);
  ASSERT_EQ(m.blogs.size(), 2u);
  EXPECT_TRUE(RecordsEqual(m.blogs[0], result.results[0]));

  wire.clear();
  EncodeStatsResult(9, "{\"a\":1}", &wire);
  m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kStatsResult);
  EXPECT_EQ(m.text, "{\"a\":1}");
}

// A receive buffer holding one and a half pipelined messages yields the
// first frame and reports kNeedMore for the remainder — the server's
// stream reassembly loop in ProcessInput.
TEST(NetProtocol, PeekFrameReassemblesPipelinedStream) {
  std::string wire;
  EncodeEmpty(MsgType::kPing, 1, &wire);
  const size_t first_len = wire.size();
  EncodeEmpty(MsgType::kPong, 2, &wire);
  const std::string partial = wire.substr(0, wire.size() - 3);

  size_t frame_len = 0;
  ASSERT_EQ(PeekFrame(partial.data(), partial.size(), kMaxFramePayloadBytes,
                      &frame_len),
            FrameStatus::kFrame);
  EXPECT_EQ(frame_len, first_len);
  EXPECT_EQ(PeekFrame(partial.data() + first_len, partial.size() - first_len,
                      kMaxFramePayloadBytes, &frame_len),
            FrameStatus::kNeedMore);
  // Fewer bytes than a header is always kNeedMore.
  EXPECT_EQ(PeekFrame(partial.data(), kFrameHeaderBytes - 1,
                      kMaxFramePayloadBytes, &frame_len),
            FrameStatus::kNeedMore);
}

TEST(NetProtocol, PeekFrameRejectsImplausibleLength) {
  std::string wire;
  EncodeEmpty(MsgType::kPing, 1, &wire);
  // Declare a payload bigger than the caller's limit.
  const uint32_t huge = 1u << 20;
  wire.replace(sizeof(uint32_t), sizeof(uint32_t),
               reinterpret_cast<const char*>(&huge), sizeof(huge));
  size_t frame_len = 0;
  EXPECT_EQ(PeekFrame(wire.data(), wire.size(), /*max_payload=*/64 * 1024,
                      &frame_len),
            FrameStatus::kCorrupt);
}

TEST(NetProtocol, DecodeRejectsCorruptAndMalformed) {
  std::string wire;
  EncodeIngestAck(5, 1, 0, &wire);
  // Flip a payload byte: checksum mismatch.
  std::string corrupt = wire;
  corrupt[kFrameHeaderBytes + 2] ^= 0x40;
  Message m;
  EXPECT_FALSE(DecodeMessage(corrupt.data(), corrupt.size(), &m).ok());

  // A checksum-valid frame with an unknown type byte is malformed.
  std::string payload(1, '\x7F');  // type 127
  payload.append(8, '\0');         // request id
  std::string bad;
  AppendFrame(payload.data(), payload.size(), &bad);
  EXPECT_FALSE(DecodeMessage(bad.data(), bad.size(), &m).ok());

  // Trailing bytes after a complete body are malformed, not ignored.
  std::string trailing_payload;
  trailing_payload.push_back(static_cast<char>(MsgType::kPing));
  trailing_payload.append(8, '\0');
  trailing_payload.push_back('x');
  std::string trailing;
  AppendFrame(trailing_payload.data(), trailing_payload.size(), &trailing);
  EXPECT_FALSE(DecodeMessage(trailing.data(), trailing.size(), &m).ok());
}

// A checksum-valid frame declaring far more records/terms than its
// payload could possibly hold must be rejected before reserve(): a tiny
// kIngest frame with count=0xFFFFFFFF would otherwise force a multi-GB
// allocation (remote crash via uncaught bad_alloc).
TEST(NetProtocol, DecodeRejectsCountExceedingPayload) {
  Message m;

  std::string ingest_payload;
  ingest_payload.push_back(static_cast<char>(MsgType::kIngest));
  ingest_payload.append(8, '\0');  // request id
  const uint32_t huge = 0xFFFFFFFFu;
  ingest_payload.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::string ingest;
  AppendFrame(ingest_payload.data(), ingest_payload.size(), &ingest);
  EXPECT_FALSE(DecodeMessage(ingest.data(), ingest.size(), &m).ok());

  std::string result_payload;
  result_payload.push_back(static_cast<char>(MsgType::kQueryResult));
  result_payload.append(8, '\0');   // request id
  result_payload.push_back('\0');   // memory_hit
  result_payload.append(8, '\0');   // from_memory + from_disk
  result_payload.append(reinterpret_cast<const char*>(&huge), sizeof(huge));
  std::string result;
  AppendFrame(result_payload.data(), result_payload.size(), &result);
  EXPECT_FALSE(DecodeMessage(result.data(), result.size(), &m).ok());

  std::string query_payload;
  query_payload.push_back(static_cast<char>(MsgType::kQuery));
  query_payload.append(8, '\0');  // request id
  query_payload.push_back('\0');  // query type
  query_payload.append(4, '\0');  // k
  const uint16_t many_terms = 0xFFFFu;
  query_payload.append(reinterpret_cast<const char*>(&many_terms),
                       sizeof(many_terms));
  std::string query;
  AppendFrame(query_payload.data(), query_payload.size(), &query);
  EXPECT_FALSE(DecodeMessage(query.data(), query.size(), &m).ok());
}

}  // namespace
}  // namespace net
}  // namespace kflush
