// Continuous queries over the wire: kSubscribe/kSubAck/kUnsubscribe/kPush
// encode/decode round-trips (including terminal pushes and corrupt /
// count-bounded frames), live loopback subscribe -> server-push -> fold,
// push-count reconciliation against the manager's sub.* families, and the
// slow-consumer backpressure contract — a subscriber that stops reading
// loses its CONNECTION (explicit terminal push, then close), never
// individual deltas silently.

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/durability.h"
#include "testing/sub_fold.h"
#include "testing/test_util.h"

namespace kflush {
namespace net {
namespace {

using testing_util::DeltaFolder;
using testing_util::MakeBlog;
using testing_util::RecordsEqual;
using testing_util::SmallStoreOptions;

// --- protocol round-trips ----------------------------------------------

Message DecodeOne(const std::string& wire) {
  size_t frame_len = 0;
  EXPECT_EQ(PeekFrame(wire.data(), wire.size(), kMaxFramePayloadBytes,
                      &frame_len),
            FrameStatus::kFrame);
  EXPECT_EQ(frame_len, wire.size());
  Message message;
  EXPECT_TRUE(DecodeMessage(wire.data(), frame_len, &message).ok());
  return message;
}

TEST(SubProtocol, SubscribeRoundTripsEveryKind) {
  SubscriptionSpec keyword;
  keyword.kind = SubKind::kKeyword;
  keyword.k = 25;
  keyword.term = 7777;

  SubscriptionSpec area;
  area.kind = SubKind::kArea;
  area.k = 3;
  area.box = BoundingBox{40.5, -74.25, 40.875, -73.5};

  SubscriptionSpec user;
  user.kind = SubKind::kUser;
  user.k = 1;
  user.user = 0xABCDEF0123456789ull;

  for (const SubscriptionSpec& spec : {keyword, area, user}) {
    std::string wire;
    EncodeSubscribe(11, spec, &wire);
    const Message m = DecodeOne(wire);
    EXPECT_EQ(m.type, MsgType::kSubscribe);
    EXPECT_EQ(m.request_id, 11u);
    EXPECT_EQ(m.spec.kind, spec.kind);
    EXPECT_EQ(m.spec.k, spec.k);
    switch (spec.kind) {
      case SubKind::kKeyword:
        EXPECT_EQ(m.spec.term, spec.term);
        break;
      case SubKind::kUser:
        EXPECT_EQ(m.spec.user, spec.user);
        break;
      case SubKind::kArea:
        EXPECT_EQ(m.spec.box.min_lat, spec.box.min_lat);
        EXPECT_EQ(m.spec.box.min_lon, spec.box.min_lon);
        EXPECT_EQ(m.spec.box.max_lat, spec.box.max_lat);
        EXPECT_EQ(m.spec.box.max_lon, spec.box.max_lon);
        break;
    }
  }
}

TEST(SubProtocol, SubAckAndUnsubscribeRoundTrip) {
  std::string wire;
  EncodeSubAck(21, 0x1122334455667788ull, &wire);
  Message m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kSubAck);
  EXPECT_EQ(m.request_id, 21u);
  EXPECT_EQ(m.sub_id, 0x1122334455667788ull);

  wire.clear();
  EncodeUnsubscribe(22, 99, &wire);
  m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kUnsubscribe);
  EXPECT_EQ(m.sub_id, 99u);
}

TEST(SubProtocol, PushRoundTripsDeltasAndTerminalFlag) {
  std::vector<SubDelta> deltas;
  SubDelta enter;
  enter.seq = 1;
  enter.kind = SubDeltaKind::kEnter;
  enter.score = 12345.5;
  enter.id = 42;
  enter.record = MakeBlog(42, 12345, {5, 9}, 3, "pushed record");
  deltas.push_back(enter);
  SubDelta exit;
  exit.seq = 2;
  exit.kind = SubDeltaKind::kExit;
  exit.score = 99.0;
  exit.id = 17;
  deltas.push_back(exit);

  std::string wire;
  EncodePush(777, /*terminal=*/false, deltas, &wire);
  Message m = DecodeOne(wire);
  EXPECT_EQ(m.type, MsgType::kPush);
  EXPECT_EQ(m.request_id, 0u);  // server-initiated, never correlated
  EXPECT_EQ(m.sub_id, 777u);
  EXPECT_FALSE(m.push_terminal);
  ASSERT_EQ(m.deltas.size(), 2u);
  EXPECT_EQ(m.deltas[0].seq, 1u);
  EXPECT_EQ(m.deltas[0].kind, SubDeltaKind::kEnter);
  EXPECT_EQ(m.deltas[0].score, 12345.5);
  EXPECT_EQ(m.deltas[0].id, 42u);
  EXPECT_TRUE(RecordsEqual(m.deltas[0].record, enter.record));
  EXPECT_EQ(m.deltas[1].seq, 2u);
  EXPECT_EQ(m.deltas[1].kind, SubDeltaKind::kExit);
  EXPECT_EQ(m.deltas[1].id, 17u);

  // Terminal push: no deltas, flag set.
  wire.clear();
  EncodePush(777, /*terminal=*/true, {}, &wire);
  m = DecodeOne(wire);
  EXPECT_TRUE(m.push_terminal);
  EXPECT_TRUE(m.deltas.empty());
}

TEST(SubProtocol, CorruptPushFrameIsRejected) {
  SubDelta enter;
  enter.seq = 1;
  enter.kind = SubDeltaKind::kEnter;
  enter.id = 42;
  enter.record = MakeBlog(42, 1, {5});
  std::string wire;
  EncodePush(7, false, {enter}, &wire);
  // Flip one payload byte: the frame checksum must catch it.
  wire[wire.size() / 2] ^= 0x40;
  Message m;
  EXPECT_FALSE(DecodeMessage(wire.data(), wire.size(), &m).ok());
}

TEST(SubProtocol, PushCountFieldIsBoundedByPayloadSize) {
  // A checksum-valid push whose declared delta count cannot fit in the
  // remaining payload bytes must be rejected up front, not trusted as an
  // allocation size.
  std::string payload;
  payload.push_back(static_cast<char>(MsgType::kPush));
  payload.append(8, '\0');                  // request id
  payload.append(8, '\0');                  // sub id
  payload.push_back('\0');                  // flags
  payload.append({'\xFF', '\xFF', '\xFF', '\x7F'});  // count = 2^31-1
  std::string wire;
  AppendFrame(payload.data(), payload.size(), &wire);
  Message m;
  EXPECT_FALSE(DecodeMessage(wire.data(), wire.size(), &m).ok());
}

TEST(SubProtocol, TruncatedPushDeltaIsRejected) {
  SubDelta enter;
  enter.seq = 1;
  enter.kind = SubDeltaKind::kEnter;
  enter.id = 42;
  enter.record = MakeBlog(42, 1, {5});
  std::string full;
  EncodePush(7, false, {enter}, &full);
  // Rebuild a frame whose payload is cut mid-delta but whose checksum and
  // length prefix are internally consistent: decode must fail cleanly.
  const size_t header = 8;  // crc + len
  std::string payload = full.substr(header, full.size() - header - 10);
  std::string wire;
  AppendFrame(payload.data(), payload.size(), &wire);
  Message m;
  EXPECT_FALSE(DecodeMessage(wire.data(), wire.size(), &m).ok());
}

// --- loopback ----------------------------------------------------------

ShardedSystemOptions SystemOptionsFor(size_t shards) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 1 << 20);
  options.system.ingest_queue_capacity = 64;
  options.num_shards = shards;
  return options;
}

std::unique_ptr<NetClient> MustConnect(const NetServer& server) {
  auto client = NetClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return std::move(*client);
}

uint64_t SubCounter(NetServer& server, const char* name) {
  return server.subscriptions()->metrics_registry()->counter(name)->value();
}

void AwaitDigestion(const ShardedMicroblogSystem& system) {
  while (system.digested() < system.routed_copies()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

// Subscribe over TCP, ingest from a second connection, and fold the
// server-initiated pushes: the folded member set must converge on the
// one-shot answer, and the pushed frame/delta counts must reconcile
// exactly against sub.pushes and sub.deltas_pushed after teardown.
TEST(SubNet, PushesFoldToOneShotAnswerAndCountsReconcile) {
  ShardedMicroblogSystem system(SystemOptionsFor(2));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = MustConnect(server);
  SubscriptionSpec spec;
  spec.kind = SubKind::kKeyword;
  spec.k = 5;
  spec.term = 300;
  auto sub_id = subscriber->Subscribe(spec);
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();

  auto producer = MustConnect(server);
  std::vector<Microblog> blogs;
  for (int i = 0; i < 30; ++i) {
    // Alternate the watched term with a decoy so enters interleave with
    // non-matching traffic; later timestamps displace earlier members.
    blogs.push_back(MakeBlog(kInvalidMicroblogId, 1000 + i,
                             {static_cast<KeywordId>(i % 2 == 0 ? 300 : 301)}));
  }
  auto ack = producer->Ingest(blogs);
  ASSERT_TRUE(ack.ok());
  ASSERT_EQ(ack->type, MsgType::kIngestAck);
  AwaitDigestion(system);

  // Fold pushes until the standing result converges on the one-shot
  // answer (5 enters for the first full window, then exit+enter pairs).
  TopKQuery query;
  query.terms = {300};
  query.k = 5;
  auto expect = producer->Query(query);
  ASSERT_TRUE(expect.ok()) << expect.status().ToString();
  ASSERT_EQ(expect->results.size(), 5u);

  DeltaFolder fold;
  uint64_t frames_seen = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (std::chrono::steady_clock::now() < deadline) {
    auto push = subscriber->RecvPush();
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    ASSERT_EQ(push->type, MsgType::kPush);
    ASSERT_EQ(push->sub_id, *sub_id);
    ASSERT_FALSE(push->push_terminal);
    ++frames_seen;
    ASSERT_TRUE(fold.ApplyAll(push->deltas));
    if (fold.members().size() == 5 &&
        fold.members().front().id == expect->results.front().id &&
        fold.members().back().id == expect->results[4].id) {
      break;
    }
  }
  // Exact (score, id) order match against the one-shot engine answer,
  // and every enter carried the full record (ids are server-stamped
  // sequentially per shard route; compare via the query result copies).
  ASSERT_EQ(fold.members().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fold.members()[i].id, expect->results[i].id) << "rank " << i;
    auto it = fold.records().find(expect->results[i].id);
    ASSERT_NE(it, fold.records().end());
    EXPECT_TRUE(RecordsEqual(it->second, expect->results[i]));
  }

  // Quiesce the push path, then reconcile: after the manager reports all
  // published deltas pushed, the server has already written every kPush
  // frame into this connection ahead of the unsubscribe ack (responses
  // are FIFO per connection), so the client can drain them all without
  // blocking and the counts must match the sub.* families exactly.
  while (SubCounter(server, "sub.deltas_pushed") <
         SubCounter(server, "sub.deltas_published")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(subscriber->Unsubscribe(*sub_id).ok());
  const uint64_t frames_pushed = SubCounter(server, "sub.pushes");
  const uint64_t deltas_pushed = SubCounter(server, "sub.deltas_pushed");
  ASSERT_GT(frames_pushed, 0u);

  // This is the only subscription and the only subscriber connection, so
  // every counted push frame/delta belongs to this client. Drain the
  // buffered remainder and reconcile both counts exactly.
  while (fold.deltas_applied() < deltas_pushed) {
    auto push = subscriber->RecvPush();
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    ASSERT_FALSE(push->push_terminal);
    ++frames_seen;
    ASSERT_TRUE(fold.ApplyAll(push->deltas));
  }
  EXPECT_EQ(fold.deltas_applied(), deltas_pushed)
      << "client saw a different delta count than sub.deltas_pushed";
  EXPECT_EQ(frames_seen, frames_pushed)
      << "client saw a different push-frame count than sub.pushes";
  // Nothing was dropped server-side: the clean-unsubscribe path drained
  // everything before the ack.
  EXPECT_EQ(SubCounter(server, "sub.deltas_dropped_on_disconnect"), 0u);

  server.Stop();
  system.Stop();
  EXPECT_EQ(SubCounter(server, "sub.deltas_published"),
            SubCounter(server, "sub.deltas_pushed") +
                SubCounter(server, "sub.deltas_dropped_on_disconnect"));
}

// A subscriber that stops reading while deltas stream must lose the
// connection, not deltas: the server terminal-pushes every standing query
// on the connection, flushes, and closes. The client observes ordinary
// pushes, then the terminal push, then EOF — and the manager's ledger
// still balances, with the undrained remainder accounted as dropped.
TEST(SubNet, SlowConsumerGetsTerminalPushThenDisconnect) {
  ShardedMicroblogSystem system(SystemOptionsFor(2));
  system.Start();
  ServerOptions options;
  options.conn_write_buffer_limit = 32 * 1024;
  NetServer server(&system, options);
  ASSERT_TRUE(server.Start().ok());

  auto subscriber = MustConnect(server);
  SubscriptionSpec spec;
  spec.kind = SubKind::kKeyword;
  spec.k = 100000;  // every record is a member: every insert is an enter
  spec.term = 444;
  auto sub_id = subscriber->Subscribe(spec);
  ASSERT_TRUE(sub_id.ok()) << sub_id.status().ToString();

  // Saturate: 4 KiB of text per record makes each enter delta heavy, so
  // the socket buffers and then the server-side pending write buffer
  // fill while the subscriber reads nothing.
  auto producer = MustConnect(server);
  const std::string heavy(4096, 'x');
  bool tripped = false;
  for (int batch = 0; batch < 400 && !tripped; ++batch) {
    std::vector<Microblog> blogs;
    for (int i = 0; i < 25; ++i) {
      blogs.push_back(
          MakeBlog(kInvalidMicroblogId, 0, {444}, /*user=*/1, heavy));
    }
    auto ack = producer->Ingest(blogs);
    ASSERT_TRUE(ack.ok());
    if (ack->type == MsgType::kNack) {
      // All 25 records route to term 444's one owner shard, so when the
      // host is busy (parallel ctest) digestion can lag enough to fill
      // that shard's queue — kOverloaded is the admission contract, not
      // a failure. Back off and keep producing.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      AwaitDigestion(system);
      continue;
    }
    ASSERT_EQ(ack->type, MsgType::kIngestAck);
    AwaitDigestion(system);
    tripped = server.subscriptions()->num_active() == 0;
  }
  ASSERT_TRUE(tripped)
      << "backpressure limit never tripped a slow-consumer disconnect";

  // Drain the subscriber's socket: normal pushes (strictly ordered, seq
  // contiguous), then exactly one terminal push, then EOF.
  DeltaFolder fold;
  bool saw_terminal = false;
  while (!saw_terminal) {
    auto push = subscriber->RecvPush();
    ASSERT_TRUE(push.ok())
        << "stream ended before the terminal push: " << push.status().ToString();
    ASSERT_EQ(push->type, MsgType::kPush);
    ASSERT_EQ(push->sub_id, *sub_id);
    ASSERT_TRUE(fold.ApplyAll(push->deltas));
    saw_terminal = push->push_terminal;
  }
  auto eof = subscriber->RecvPush();
  EXPECT_FALSE(eof.ok()) << "connection must be closed after terminal push";

  // No silent delta drops: everything the client folded was counted
  // pushed; everything it never got was counted dropped; they partition
  // what was published. The client-side fold saw a contiguous seq prefix
  // (DeltaFolder enforces it), so nothing vanished mid-stream.
  const uint64_t published = SubCounter(server, "sub.deltas_published");
  const uint64_t pushed = SubCounter(server, "sub.deltas_pushed");
  const uint64_t dropped =
      SubCounter(server, "sub.deltas_dropped_on_disconnect");
  EXPECT_EQ(published, pushed + dropped);
  EXPECT_GT(dropped, 0u) << "a tripped consumer should have had undrained "
                            "deltas at disconnect time";
  EXPECT_EQ(fold.deltas_applied(), pushed)
      << "client folded a different count than the server pushed";

  server.Stop();
  system.Stop();
}

// Unsubscribing over the wire for an unknown id is a NACK, and a second
// connection cannot tear down another connection's subscription state
// beyond what the manager allows (the id is global; the ack echoes it).
TEST(SubNet, SubscribeValidationErrorsNackOverTheWire) {
  ShardedMicroblogSystem system(SystemOptionsFor(1));
  system.Start();
  NetServer server(&system, ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto client = MustConnect(server);

  SubscriptionSpec bad;
  bad.kind = SubKind::kKeyword;
  bad.k = 0;  // invalid
  bad.term = 1;
  auto r = client->Subscribe(bad);
  EXPECT_FALSE(r.ok());

  EXPECT_FALSE(client->Unsubscribe(123456).ok());

  // The connection survives NACKs: a valid subscribe still works.
  SubscriptionSpec good;
  good.kind = SubKind::kKeyword;
  good.k = 3;
  good.term = 1;
  auto id = client->Subscribe(good);
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(client->Unsubscribe(*id).ok());

  server.Stop();
  system.Stop();
}

}  // namespace
}  // namespace net
}  // namespace kflush
