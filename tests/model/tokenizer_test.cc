#include "model/tokenizer.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

TEST(TokenizerTest, ExtractsHashtags) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("breaking: #obama speaks at #rally today");
  EXPECT_EQ(tokens, (std::vector<std::string>{"obama", "rally"}));
}

TEST(TokenizerTest, LowercasesTokens) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("#ObAmA #NBA");
  EXPECT_EQ(tokens, (std::vector<std::string>{"obama", "nba"}));
}

TEST(TokenizerTest, DeduplicatesPreservingFirstOccurrence) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("#a1 #b2 #a1 #b2 #a1");
  EXPECT_EQ(tokens, (std::vector<std::string>{"a1", "b2"}));
}

TEST(TokenizerTest, FallsBackToTermsWithoutHashtags) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("concurrency control considered useful");
  EXPECT_EQ(tokens, (std::vector<std::string>{"concurrency", "control",
                                              "considered", "useful"}));
}

TEST(TokenizerTest, NoFallbackWhenDisabled) {
  TokenizerOptions opts;
  opts.fallback_to_terms = false;
  Tokenizer tok(opts);
  EXPECT_TRUE(tok.Tokenize("no hashtags here").empty());
}

TEST(TokenizerTest, DropsStopwordsInTermMode) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("the cat and the hat");
  EXPECT_EQ(tokens, (std::vector<std::string>{"cat", "hat"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("#a #ab c de");
  EXPECT_EQ(tokens, (std::vector<std::string>{"ab"}));
}

TEST(TokenizerTest, AllTermsModeKeepsHashtagsFirst) {
  TokenizerOptions opts;
  opts.hashtags_only = false;
  Tokenizer tok(opts);
  auto tokens = tok.Tokenize("great game #nba tonight");
  ASSERT_GE(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "nba");
}

TEST(TokenizerTest, HandlesPunctuationAndUnderscores) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("#so_cool!!! (#wow), #after.dot");
  EXPECT_EQ(tokens,
            (std::vector<std::string>{"so_cool", "wow", "after"}));
}

TEST(TokenizerTest, EmptyAndDegenerateInputs) {
  Tokenizer tok;
  EXPECT_TRUE(tok.Tokenize("").empty());
  EXPECT_TRUE(tok.Tokenize("###").empty());
  EXPECT_TRUE(tok.Tokenize("    ").empty());
  EXPECT_TRUE(tok.Tokenize("# # #").empty());
}

TEST(TokenizerTest, HashtagAtEndOfText) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("trailing #tag");
  EXPECT_EQ(tokens, (std::vector<std::string>{"tag"}));
}

TEST(TokenizerTest, NumbersAreTokens) {
  Tokenizer tok;
  auto tokens = tok.Tokenize("#2024 election");
  EXPECT_EQ(tokens, (std::vector<std::string>{"2024"}));
}

}  // namespace
}  // namespace kflush
