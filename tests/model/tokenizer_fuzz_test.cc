// Robustness fuzz: the tokenizer must never crash, loop, or emit invalid
// tokens on arbitrary byte soup (microblog text is user-controlled).

#include <gtest/gtest.h>

#include <cctype>
#include <string>

#include "model/tokenizer.h"
#include "util/random.h"

namespace kflush {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  const size_t len = rng->Uniform(max_len + 1);
  std::string s(len, '\0');
  for (size_t i = 0; i < len; ++i) {
    s[i] = static_cast<char>(rng->Uniform(256));
  }
  return s;
}

class TokenizerFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(TokenizerFuzzTest, ArbitraryBytesProduceWellFormedTokens) {
  Rng rng(GetParam());
  Tokenizer hashtag_tok;
  TokenizerOptions all;
  all.hashtags_only = false;
  Tokenizer all_tok(all);

  for (int round = 0; round < 2000; ++round) {
    const std::string input = RandomBytes(&rng, 300);
    for (const Tokenizer* tok : {&hashtag_tok, &all_tok}) {
      auto tokens = tok->Tokenize(input);
      for (const std::string& token : tokens) {
        ASSERT_GE(token.size(), tok->options().min_token_length);
        for (char c : token) {
          const unsigned char uc = static_cast<unsigned char>(c);
          ASSERT_TRUE(std::isalnum(uc) || c == '_')
              << "bad byte in token from seed " << GetParam();
          ASSERT_FALSE(std::isupper(uc));
        }
      }
      // Tokens are distinct.
      std::set<std::string> distinct(tokens.begin(), tokens.end());
      ASSERT_EQ(distinct.size(), tokens.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerFuzzTest,
                         ::testing::Values(1, 22, 333, 4444));

TEST(TokenizerFuzzTest, PathologicalInputs) {
  Tokenizer tok;
  // Very long single token.
  std::string long_token = "#" + std::string(100'000, 'a');
  auto tokens = tok.Tokenize(long_token);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].size(), 100'000u);
  // Many tiny tokens.
  std::string many;
  for (int i = 0; i < 10'000; ++i) many += "#ab ";
  EXPECT_EQ(tok.Tokenize(many).size(), 1u);  // all duplicates
  // Hash storm.
  EXPECT_TRUE(tok.Tokenize(std::string(50'000, '#')).empty());
}

}  // namespace
}  // namespace kflush
