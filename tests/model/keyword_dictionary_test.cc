#include "model/keyword_dictionary.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace kflush {
namespace {

TEST(KeywordDictionaryTest, InternAssignsDenseIds) {
  KeywordDictionary dict;
  EXPECT_EQ(dict.Intern("alpha"), 0u);
  EXPECT_EQ(dict.Intern("beta"), 1u);
  EXPECT_EQ(dict.Intern("gamma"), 2u);
  EXPECT_EQ(dict.size(), 3u);
}

TEST(KeywordDictionaryTest, InternIsIdempotent) {
  KeywordDictionary dict;
  const KeywordId a = dict.Intern("same");
  EXPECT_EQ(dict.Intern("same"), a);
  EXPECT_EQ(dict.size(), 1u);
}

TEST(KeywordDictionaryTest, LookupWithoutIntern) {
  KeywordDictionary dict;
  dict.Intern("known");
  EXPECT_EQ(dict.Lookup("known"), 0u);
  EXPECT_EQ(dict.Lookup("unknown"), kInvalidKeywordId);
  EXPECT_EQ(dict.size(), 1u);  // Lookup never interns
}

TEST(KeywordDictionaryTest, NameRoundTrip) {
  KeywordDictionary dict;
  const KeywordId id = dict.Intern("roundtrip");
  EXPECT_EQ(dict.Name(id), "roundtrip");
  EXPECT_EQ(dict.Name(9999), "");
}

TEST(KeywordDictionaryTest, FootprintGrows) {
  KeywordDictionary dict;
  const size_t empty = dict.FootprintBytes();
  dict.Intern("some-keyword");
  EXPECT_GT(dict.FootprintBytes(), empty);
}

TEST(KeywordDictionaryTest, ConcurrentInterningIsConsistent) {
  KeywordDictionary dict;
  constexpr int kThreads = 8;
  constexpr int kWords = 500;
  std::vector<std::thread> threads;
  std::vector<std::vector<KeywordId>> ids(kThreads,
                                          std::vector<KeywordId>(kWords));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&dict, &ids, t] {
      for (int w = 0; w < kWords; ++w) {
        ids[t][w] = dict.Intern("word" + std::to_string(w));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(dict.size(), static_cast<size_t>(kWords));
  // Every thread observed the same id per word.
  for (int w = 0; w < kWords; ++w) {
    for (int t = 1; t < kThreads; ++t) {
      ASSERT_EQ(ids[t][w], ids[0][w]) << "word" << w;
    }
    EXPECT_EQ(dict.Name(ids[0][w]), "word" + std::to_string(w));
  }
}

}  // namespace
}  // namespace kflush
