#include "model/attribute.h"

#include <gtest/gtest.h>

#include "../testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::MakeGeoBlog;

TEST(SpatialGridMapperTest, SamePointSameTile) {
  SpatialGridMapper mapper;
  EXPECT_EQ(mapper.TileFor(44.98, -93.26), mapper.TileFor(44.98, -93.26));
}

TEST(SpatialGridMapperTest, NearbyPointsWithinTileEdgeShareTile) {
  SpatialGridMapper mapper(1.0);  // 1-degree tiles for easy reasoning
  EXPECT_EQ(mapper.TileFor(10.2, 20.2), mapper.TileFor(10.8, 20.8));
  EXPECT_NE(mapper.TileFor(10.2, 20.2), mapper.TileFor(11.2, 20.2));
  EXPECT_NE(mapper.TileFor(10.2, 20.2), mapper.TileFor(10.2, 21.2));
}

TEST(SpatialGridMapperTest, TileCenterRoundTrips) {
  SpatialGridMapper mapper;
  const TermId tile = mapper.TileFor(40.7128, -74.0060);  // NYC
  const GeoPoint center = mapper.TileCenter(tile);
  EXPECT_EQ(mapper.TileFor(center.lat, center.lon), tile);
}

TEST(SpatialGridMapperTest, ClampsOutOfRangeCoordinates) {
  SpatialGridMapper mapper;
  EXPECT_EQ(mapper.TileFor(95.0, 0.0), mapper.TileFor(90.0, 0.0));
  EXPECT_EQ(mapper.TileFor(0.0, -200.0), mapper.TileFor(0.0, -180.0));
}

// Property sweep: round-trip holds across grid resolutions and points.
class GridEdgeTest : public ::testing::TestWithParam<double> {};

TEST_P(GridEdgeTest, CenterRoundTripAcrossPoints) {
  SpatialGridMapper mapper(GetParam());
  const double lats[] = {-89.9, -45.0, 0.0, 0.01, 37.77, 89.9};
  const double lons[] = {-179.9, -122.4, 0.0, 0.01, 116.4, 179.9};
  for (double lat : lats) {
    for (double lon : lons) {
      const TermId tile = mapper.TileFor(lat, lon);
      const GeoPoint c = mapper.TileCenter(tile);
      EXPECT_EQ(mapper.TileFor(c.lat, c.lon), tile)
          << "edge=" << GetParam() << " p=(" << lat << "," << lon << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Edges, GridEdgeTest,
                         ::testing::Values(0.01, 0.029, 0.1, 1.0, 5.0));

TEST(KeywordAttributeTest, OneTermPerKeyword) {
  KeywordAttribute attr;
  std::vector<TermId> terms;
  attr.ExtractTerms(MakeBlog(1, 10, {5, 9, 12}), &terms);
  EXPECT_EQ(terms, (std::vector<TermId>{5, 9, 12}));
  EXPECT_EQ(attr.kind(), AttributeKind::kKeyword);
}

TEST(KeywordAttributeTest, NoKeywordsNoTerms) {
  KeywordAttribute attr;
  std::vector<TermId> terms{99};  // must be cleared
  attr.ExtractTerms(MakeBlog(1, 10, {}), &terms);
  EXPECT_TRUE(terms.empty());
}

TEST(SpatialAttributeTest, SingleTileTerm) {
  SpatialAttribute attr;
  std::vector<TermId> terms;
  attr.ExtractTerms(MakeGeoBlog(1, 10, 44.9, -93.2), &terms);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_EQ(terms[0], attr.mapper().TileFor(44.9, -93.2));
}

TEST(SpatialAttributeTest, NoLocationNoTerms) {
  SpatialAttribute attr;
  std::vector<TermId> terms;
  attr.ExtractTerms(MakeBlog(1, 10, {1, 2}), &terms);
  EXPECT_TRUE(terms.empty());
}

TEST(UserAttributeTest, UserIdIsTheTerm) {
  UserAttribute attr;
  std::vector<TermId> terms;
  attr.ExtractTerms(MakeBlog(1, 10, {1}, /*user=*/777), &terms);
  EXPECT_EQ(terms, (std::vector<TermId>{777}));
}

TEST(MakeAttributeTest, FactoryBuildsEveryKind) {
  for (AttributeKind kind : {AttributeKind::kKeyword, AttributeKind::kSpatial,
                             AttributeKind::kUser}) {
    auto attr = MakeAttribute(kind);
    ASSERT_NE(attr, nullptr);
    EXPECT_EQ(attr->kind(), kind);
  }
}

TEST(AttributeKindNameTest, Names) {
  EXPECT_STREQ(AttributeKindName(AttributeKind::kKeyword), "keyword");
  EXPECT_STREQ(AttributeKindName(AttributeKind::kSpatial), "spatial");
  EXPECT_STREQ(AttributeKindName(AttributeKind::kUser), "user");
}

}  // namespace
}  // namespace kflush
