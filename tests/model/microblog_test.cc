#include "model/microblog.h"

#include <gtest/gtest.h>

namespace kflush {
namespace {

TEST(MicroblogTest, BuilderSetsAllFields) {
  Microblog blog = MicroblogBuilder()
                       .WithId(7)
                       .WithTimestamp(1234)
                       .WithUser(42)
                       .WithFollowers(100)
                       .WithLocation(44.98, -93.26)
                       .WithText("hello #world")
                       .WithKeywords({1, 2})
                       .AddKeyword(3)
                       .Build();
  EXPECT_EQ(blog.id, 7u);
  EXPECT_EQ(blog.created_at, 1234u);
  EXPECT_EQ(blog.user_id, 42u);
  EXPECT_EQ(blog.follower_count, 100u);
  EXPECT_TRUE(blog.has_location);
  EXPECT_DOUBLE_EQ(blog.location.lat, 44.98);
  EXPECT_DOUBLE_EQ(blog.location.lon, -93.26);
  EXPECT_EQ(blog.text, "hello #world");
  EXPECT_EQ(blog.keywords, (std::vector<KeywordId>{1, 2, 3}));
}

TEST(MicroblogTest, DefaultHasNoLocationAndInvalidId) {
  Microblog blog;
  EXPECT_EQ(blog.id, kInvalidMicroblogId);
  EXPECT_FALSE(blog.has_location);
  EXPECT_TRUE(blog.keywords.empty());
}

TEST(MicroblogTest, FootprintGrowsWithText) {
  Microblog small = MicroblogBuilder().WithText("ab").Build();
  Microblog large = MicroblogBuilder().WithText(std::string(200, 'x')).Build();
  EXPECT_GT(large.FootprintBytes(), small.FootprintBytes());
  EXPECT_EQ(large.FootprintBytes() - small.FootprintBytes(), 198u);
}

TEST(MicroblogTest, FootprintGrowsWithKeywords) {
  Microblog none = MicroblogBuilder().Build();
  Microblog three = MicroblogBuilder().WithKeywords({1, 2, 3}).Build();
  EXPECT_EQ(three.FootprintBytes() - none.FootprintBytes(),
            3 * sizeof(KeywordId));
}

TEST(MicroblogTest, FootprintIsCopyInvariant) {
  Microblog blog =
      MicroblogBuilder().WithText("payload").WithKeywords({9, 8}).Build();
  Microblog copy = blog;
  copy.text.reserve(4096);  // capacity changes must not affect accounting
  EXPECT_EQ(blog.FootprintBytes(), copy.FootprintBytes());
}

TEST(MicroblogTest, DebugStringMentionsKeyFields) {
  Microblog blog = MicroblogBuilder()
                       .WithId(5)
                       .WithLocation(1.5, 2.5)
                       .WithText("txt")
                       .WithKeywords({11})
                       .Build();
  const std::string s = blog.DebugString();
  EXPECT_NE(s.find("id=5"), std::string::npos);
  EXPECT_NE(s.find("11"), std::string::npos);
  EXPECT_NE(s.find("txt"), std::string::npos);
  EXPECT_NE(s.find("loc="), std::string::npos);
}

}  // namespace
}  // namespace kflush
