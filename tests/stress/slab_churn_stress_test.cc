// Slab-reuse churn stress: the failure mode unique to pooled storage is a
// stale pointer into a recycled block — a record blob or posting block
// freed by a flush cycle, recycled by a concurrent insert into the same
// shard, and then read through a dangling reference. This harness
// maximizes that churn: a tiny budget forces continuous flush cycles, so
// every shard's SlabPool free lists turn over constantly while inserters
// keep allocating from them and readers walk records and posting lists.
// Under ASan a use-after-recycle reads poisoned slab memory via the
// content checks below; under TSan any access outside the shard-lock
// discipline reports. The run ends with the byte-conservation identity,
// which fails if churn ever leaks or double-frees a blob.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/query_engine.h"
#include "core/store.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "policy/flush_policy.h"
#include "storage/raw_store.h"
#include "stress/stress_util.h"

namespace kflush {
namespace {

class SlabChurnStressTest : public ::testing::TestWithParam<PolicyKind> {};

// Sink for the walker's checksums so the reads cannot be optimized away.
std::atomic<uint64_t> walker_sink{0};

TEST_P(SlabChurnStressTest, ConcurrentChurnRecyclesSafely) {
  const uint64_t seed = stress::AnnounceSeed();

  SimClock clock(1'000'000);
  StoreOptions options;
  // Small budget: resident set turns over every few thousand inserts, so
  // pool blocks are recycled hundreds of times within the run.
  options.memory_budget_bytes = 512 << 10;
  options.k = 8;
  options.policy = GetParam();
  options.clock = &clock;
  MicroblogStore store(options);
  QueryEngine engine(&store);

  TweetGeneratorOptions stream_template;
  stream_template.vocabulary_size = 1'500;  // hot terms -> big posting blocks
  stream_template.num_users = 500;

  std::atomic<bool> done{false};
  std::atomic<uint64_t> insert_errors{0};

  std::vector<std::thread> inserters;
  for (int p = 0; p < 2; ++p) {
    inserters.emplace_back([&, p] {
      TweetGeneratorOptions stream = stream_template;
      stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(p));
      TweetGenerator gen(stream);
      for (int i = 0; i < 8'000; ++i) {
        if (!store.Insert(gen.Next()).ok()) insert_errors.fetch_add(1);
        if (i % 64 == 0) clock.Advance(1'000);
      }
    });
  }

  // Readers sweep recycled storage: record walks touch every resident
  // blob's decoded view, queries walk posting blocks and fetch payloads.
  std::thread walker([&] {
    while (!done.load(std::memory_order_relaxed)) {
      uint64_t checksum = 0;
      store.raw_store()->ForEach(
          [&](const Microblog& blog, uint32_t pcount, uint32_t) {
            // Touch the variable-length fields: a blob decoded out of a
            // recycled slab block shows up here as garbage or poison.
            checksum += blog.text.size() + blog.keywords.size() + pcount;
          });
      walker_sink.fetch_add(checksum, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  std::thread querier([&] {
    TweetGeneratorOptions stream = stream_template;
    stream.seed = stress::DeriveSeed(seed, 100);
    QueryWorkloadOptions workload;
    workload.seed = stress::DeriveSeed(seed, 101);
    TweetGenerator gen(stream);
    QueryGenerator queries(workload, stream);
    uint64_t executed = 0;
    while (!done.load(std::memory_order_relaxed)) {
      auto outcome = engine.Execute(queries.Next());
      if (!outcome.ok()) insert_errors.fetch_add(1);
      ++executed;
    }
    EXPECT_GT(executed, 0u);
  });

  for (auto& t : inserters) t.join();
  done.store(true);
  walker.join();
  querier.join();

  EXPECT_EQ(insert_errors.load(), 0u);
  EXPECT_GT(store.policy()->stats().flush_cycles, 0u)
      << "budget never filled: the run exercised no slab recycling";

  // Conservation after churn: the striped counters, a full walk, and the
  // pool footprints must still agree — a leaked or double-freed blob
  // breaks one of these.
  uint64_t walked_bytes = 0;
  store.raw_store()->ForEach([&](const Microblog& blog, uint32_t, uint32_t) {
    walked_bytes += RawDataStore::RecordBytes(blog);
  });
  EXPECT_EQ(store.raw_store()->MemoryBytes(), walked_bytes);
  EXPECT_GT(store.raw_store()->PoolFootprintBytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, SlabChurnStressTest,
                         ::testing::Values(PolicyKind::kKFlushing,
                                           PolicyKind::kKFlushingMK,
                                           PolicyKind::kFifo));

}  // namespace
}  // namespace kflush
