// Shared helpers for the deterministic race-stress harness: seed plumbing
// (every stress test derives its RNG streams from one base seed, printed on
// stderr and recorded as a test property so any failure replays exactly)
// and the structural invariants a quiesced store must satisfy under every
// policy. These tests are sanitizer fodder first — run them under
// -DKFLUSH_SANITIZE=thread / address to shake out races — but the
// invariants also catch accounting bugs in plain builds.

#ifndef KFLUSH_TESTS_STRESS_STRESS_UTIL_H_
#define KFLUSH_TESTS_STRESS_STRESS_UTIL_H_

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/store.h"
#include "policy/kflushing_policy.h"
#include "policy/lru_policy.h"

namespace kflush {
namespace stress {

/// The run's base seed: KFLUSH_STRESS_SEED in the environment overrides the
/// fixed default, so a sanitizer failure in CI replays locally with the
/// seed the job printed.
inline uint64_t BaseSeed() {
  static const uint64_t seed = [] {
    if (const char* env = std::getenv("KFLUSH_STRESS_SEED")) {
      return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
    }
    return static_cast<uint64_t>(20160516);
  }();
  return seed;
}

/// Returns BaseSeed() after printing it and attaching it to the test's
/// XML properties. Call once at the top of every stress test body.
inline uint64_t AnnounceSeed() {
  const uint64_t seed = BaseSeed();
  std::fprintf(stderr,
               "[stress] base seed = %" PRIu64
               " (replay with KFLUSH_STRESS_SEED=%" PRIu64 ")\n",
               seed, seed);
  ::testing::Test::RecordProperty("kflush_stress_seed",
                                  std::to_string(seed));
  return seed;
}

/// A distinct derived seed per (base, thread role) pair.
inline uint64_t DeriveSeed(uint64_t base, uint64_t role) {
  return base ^ (0x9E3779B97F4A7C15ULL * (role + 1));
}

/// Structural invariants that must hold once all threads have quiesced,
/// regardless of policy, attribute, or how many flushes ran:
///   1. every memory-resident record is referenced (pcount > 0) and its
///      MK top-k refcount never exceeds its reference count;
///   2. the tracker's raw-store component balances the raw store's own
///      accounting (Charge/Release pairs matched across eviction races);
///   3. the policy-overhead component balances the policy's bookkeeping
///      structure (kFlushing's over-k list L, LRU's chain);
///   4. the index holds at least one posting per live record (no record
///      survives with all its postings evicted).
inline void CheckStoreInvariants(MicroblogStore* store) {
  size_t orphans = 0;
  size_t topk_overflow = 0;
  store->raw_store()->ForEach(
      [&](const Microblog&, uint32_t pcount, uint32_t topk_count) {
        if (pcount == 0) ++orphans;
        if (topk_count > pcount) ++topk_overflow;
      });
  EXPECT_EQ(orphans, 0u) << "records with pcount == 0 left in memory";
  EXPECT_EQ(topk_overflow, 0u) << "MK top-k refcount exceeds pcount";

  EXPECT_EQ(store->tracker().ComponentUsed(MemoryComponent::kRawStore),
            store->raw_store()->MemoryBytes())
      << "raw-store bytes diverged from the tracker";

  const size_t overhead =
      store->tracker().ComponentUsed(MemoryComponent::kPolicyOverhead);
  if (const auto* kf =
          dynamic_cast<const KFlushingPolicy*>(store->policy())) {
    EXPECT_EQ(overhead,
              kf->TrackedOverKTerms() * KFlushingPolicy::kBytesPerTrackedTerm)
        << "over-k list accounting out of balance";
  } else if (const auto* lru =
                 dynamic_cast<const LruPolicy*>(store->policy())) {
    EXPECT_EQ(overhead, lru->LruListSize() * LruPolicy::kBytesPerNode)
        << "LRU chain accounting out of balance";
  }

  std::vector<size_t> sizes;
  store->policy()->CollectEntrySizes(&sizes);
  size_t postings = 0;
  for (size_t s : sizes) postings += s;
  EXPECT_GE(postings, store->raw_store()->size())
      << "live records outnumber index postings";
}

}  // namespace stress
}  // namespace kflush

#endif  // KFLUSH_TESTS_STRESS_STRESS_UTIL_H_
