// Admission-boundary race stress: concurrent routed submitters saturate
// tiny shard ingest queues so every batch crosses the accept/reject edge
// many times (TrySubmit NACK-and-retry next to blocking Submits), then
// the quiesced system is audited record by record — every record carries
// a unique marker keyword and must be queryable EXACTLY once. A lost
// marker is a silent drop across the rejection path; a duplicate marker
// is the partial-accept bug (a "rejected" batch that left sub-batches on
// some shards, re-inserted by the retry). The durable variant replays
// the same discipline through WAL recovery: a NACKed batch must never
// come back from the log.
// Sanitizer fodder first: run under -DKFLUSH_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/shard_router.h"
#include "core/sharded_system.h"
#include "stress/stress_util.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr int kProducers = 4;
constexpr int kRecordsPerProducer = 250;
constexpr KeywordId kMarkerBase = 500'000;

KeywordId MarkerFor(int producer, int seq) {
  return kMarkerBase +
         static_cast<KeywordId>(producer * kRecordsPerProducer + seq);
}

ShardedSystemOptions SaturatedOptions(size_t shards) {
  ShardedSystemOptions options;
  options.system.store = SmallStoreOptions(PolicyKind::kFifo, 4 << 20);
  // Two-slot queues: with four producers racing, rejections are constant.
  options.system.ingest_queue_capacity = 2;
  options.num_shards = shards;
  return options;
}

/// Counts records carrying `marker` in the quiesced system.
size_t MarkerCount(ShardedMicroblogSystem* system, KeywordId marker) {
  TopKQuery query;
  query.terms = {marker};
  query.k = 8;
  auto result = system->Query(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() ? result->results.size() : 0;
}

// Producers 0/1 retry TrySubmit on every kOverloaded NACK; producers 2/3
// use the blocking Submit path. Each record pairs its unique marker with
// a shared hot keyword so most batches span several shards — the
// multi-owner reservation path, not the single-queue special case.
TEST(AdmissionStress, SaturatedQueuesAdmitEveryRecordExactlyOnce) {
  stress::AnnounceSeed();
  const size_t shards = testing_util::TestShardCount();
  ShardedMicroblogSystem system(SaturatedOptions(shards));
  system.Start();

  std::atomic<uint64_t> nacks_seen{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      const bool blocking = p >= kProducers / 2;
      for (int seq = 0; seq < kRecordsPerProducer; ++seq) {
        const KeywordId marker = MarkerFor(p, seq);
        // The shared keyword routes a second copy to a (usually)
        // different shard than the marker's owner.
        const KeywordId shared = static_cast<KeywordId>(seq % 8);
        if (blocking) {
          ASSERT_TRUE(system.Submit(
              {MakeBlog(kInvalidMicroblogId, 0, {marker, shared})}));
          continue;
        }
        while (true) {
          const auto outcome = system.TrySubmit(
              {MakeBlog(kInvalidMicroblogId, 0, {marker, shared})});
          if (outcome ==
              ShardedMicroblogSystem::SubmitOutcome::kAccepted) {
            break;
          }
          ASSERT_EQ(outcome,
                    ShardedMicroblogSystem::SubmitOutcome::kOverloaded);
          nacks_seen.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  system.Stop();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kProducers) * kRecordsPerProducer;
  EXPECT_EQ(system.accepted(), kTotal);
  EXPECT_EQ(system.digested(), system.routed_copies());
  for (int p = 0; p < kProducers; ++p) {
    for (int seq = 0; seq < kRecordsPerProducer; ++seq) {
      const size_t copies = MarkerCount(&system, MarkerFor(p, seq));
      ASSERT_EQ(copies, 1u)
          << "producer " << p << " seq " << seq
          << (copies == 0 ? ": record lost" : ": record duplicated")
          << " (nacks seen: " << nacks_seen.load() << ")";
    }
  }
}

// The durable boundary: a batch NACKed while an owner shard's queue was
// full must leave nothing in any WAL — recovery replays exactly the
// acked records, once each, even after the NACKed batch is retried.
TEST(AdmissionStress, NackedBatchNeverReplaysFromWal) {
  stress::AnnounceSeed();
  const std::string dir =
      ::testing::TempDir() + "/admission_wal_stress";
  testing_util::RemoveTree(dir);

  constexpr size_t kShards = 2;
  constexpr KeywordId kFillerMarker = kMarkerBase - 1;
  // Two keywords with distinct owner shards (pure hash probe).
  ShardRouter router(kShards);
  const KeywordId full_kw = kFillerMarker;
  KeywordId other_kw = kMarkerBase;
  while (router.ShardForTerm(other_kw) ==
         router.ShardForTerm(full_kw)) {
    ++other_kw;
  }

  {
    ShardedSystemOptions options = SaturatedOptions(kShards);
    options.system.ingest_queue_capacity = 1;
    options.system.store.durability.enabled = true;
    options.system.store.durability.dir = dir;
    ShardedMicroblogSystem system(options);
    ASSERT_TRUE(system.DurabilityStatus().ok());

    // Not started: the filler parks on full_kw's shard, freezing depths.
    ASSERT_TRUE(
        system.Submit({MakeBlog(kInvalidMicroblogId, 0, {full_kw})}));
    std::vector<Microblog> batch;
    batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {other_kw}));
    batch.push_back(MakeBlog(kInvalidMicroblogId, 0, {full_kw}));
    ASSERT_EQ(system.TrySubmit(std::move(batch)),
              ShardedMicroblogSystem::SubmitOutcome::kOverloaded);

    // Release digestion and retry the identical (re-built) batch until
    // admitted; the NACKed attempt must contribute nothing to the WAL.
    system.Start();
    while (true) {
      std::vector<Microblog> retry;
      retry.push_back(MakeBlog(kInvalidMicroblogId, 0, {other_kw}));
      retry.push_back(MakeBlog(kInvalidMicroblogId, 0, {full_kw}));
      const auto outcome = system.TrySubmit(std::move(retry));
      if (outcome == ShardedMicroblogSystem::SubmitOutcome::kAccepted) {
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    system.Stop();
    EXPECT_EQ(system.accepted(), 3u);  // filler + the two retried records
  }

  // Recover from the WALs: exactly one record per admitted copy, none
  // from the NACKed attempt.
  ShardedSystemOptions options = SaturatedOptions(kShards);
  options.system.store.durability.enabled = true;
  options.system.store.durability.dir = dir;
  ShardedMicroblogSystem recovered(options);
  ASSERT_TRUE(recovered.DurabilityStatus().ok());
  EXPECT_EQ(MarkerCount(&recovered, other_kw), 1u)
      << "NACKed sub-batch replayed from WAL";
  EXPECT_EQ(MarkerCount(&recovered, full_kw), 2u);
  testing_util::RemoveTree(dir);
}

}  // namespace
}  // namespace kflush
