// Shutdown stress: Stop() racing unbounded producers, live query threads,
// an in-flight flush, and (on alternating iterations) a second concurrent
// Stop() — plus destructor-only teardown. The stop point shifts each
// iteration so teardown lands in different phases of the flush cycle. The
// tiny budget and queue keep the digestion thread bouncing off the
// backpressure stall, which Stop() must release rather than deadlock on.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "stress/stress_util.h"

namespace kflush {
namespace {

constexpr int kIterations = 10;

TEST(ShutdownStressTest, StopMidStreamRepeatedly) {
  const uint64_t seed = stress::AnnounceSeed();

  for (int iter = 0; iter < kIterations; ++iter) {
    SimClock clock(1'000'000);
    SystemOptions options;
    options.store.memory_budget_bytes = 256 << 10;
    options.store.k = 5;
    // MK carries the most teardown bookkeeping (top-k refcounts).
    options.store.policy = PolicyKind::kKFlushingMK;
    options.store.clock = &clock;
    options.ingest_queue_capacity = 4;
    MicroblogSystem system(options);
    system.Start();

    std::atomic<bool> stop{false};

    std::thread producer([&] {
      TweetGeneratorOptions stream;
      stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(iter));
      stream.vocabulary_size = 2'000;
      TweetGenerator gen(stream);
      for (;;) {
        std::vector<Microblog> batch;
        gen.FillBatch(200, &batch);
        clock.Advance(200 * stream.arrival_interval_micros);
        if (!system.Submit(std::move(batch))) return;  // queue closed
      }
    });

    std::thread query([&] {
      QueryWorkloadOptions wopts;
      wopts.seed = stress::DeriveSeed(seed, 1'000 + static_cast<uint64_t>(iter));
      TweetGeneratorOptions stream;
      stream.seed = seed;
      stream.vocabulary_size = 2'000;
      QueryGenerator queries(wopts, stream);
      while (!stop.load(std::memory_order_relaxed)) {
        auto result = system.Query(queries.Next());
        // Queries stay valid through and after Stop().
        EXPECT_TRUE(result.ok());
      }
    });

    // Vary the stop point so teardown hits digestion, flushing, and the
    // backpressure stall at different moments across iterations.
    const uint64_t threshold = 500 + 400ull * static_cast<uint64_t>(iter);
    while (system.digested() < threshold) std::this_thread::yield();

    if (iter % 2 == 0) {
      // Two Stop() calls racing: exactly one performs the teardown.
      std::thread racer([&] { system.Stop(); });
      system.Stop();
      racer.join();
    } else {
      system.Stop();
    }

    stop.store(true);
    producer.join();
    query.join();

    EXPECT_GE(system.digested(), threshold);
    stress::CheckStoreInvariants(system.store());
    // Destructor runs here, after an explicit Stop() — must be a no-op.
  }
}

TEST(ShutdownStressTest, DestructorOnlyTeardown) {
  const uint64_t seed = stress::AnnounceSeed();

  // No explicit Stop(): the destructor alone must close the queue, drain
  // it, and join the digestion and flusher threads — including when the
  // flusher is mid-cycle at scope exit. (Producers must not outlive the
  // system, so submission happens inline here.)
  for (int iter = 0; iter < 3; ++iter) {
    SimClock clock(1'000'000);
    SystemOptions options;
    options.store.memory_budget_bytes = 256 << 10;
    options.store.k = 5;
    options.store.policy = PolicyKind::kKFlushing;
    options.store.clock = &clock;
    options.ingest_queue_capacity = 2;
    MicroblogSystem system(options);
    system.Start();

    TweetGeneratorOptions stream;
    stream.seed = stress::DeriveSeed(seed, 2'000 + static_cast<uint64_t>(iter));
    stream.vocabulary_size = 1'000;
    TweetGenerator gen(stream);
    for (int b = 0; b < 30; ++b) {
      std::vector<Microblog> batch;
      gen.FillBatch(100, &batch);
      clock.Advance(100 * stream.arrival_interval_micros);
      ASSERT_TRUE(system.Submit(std::move(batch)));
    }
    // Scope ends with the queue likely non-empty and a flush in flight.
  }
}

}  // namespace
}  // namespace kflush
