// Sharded-system race stress: a ShardedMicroblogSystem under simultaneous
// producers pushing through the routing layer, fan-out query threads
// (single / OR / AND keyword, spatial tile + area fan-out, user), an
// adversarial SetK churn thread hitting every shard, and N background
// flushers kept busy by a tiny per-shard budget — so shard flush cycles
// run concurrently with each other, with routed digestion, and with
// cross-shard merges. Parameterized over policy × attribute.
// Deterministic modulo thread interleaving: all RNG streams derive from
// one announced base seed (KFLUSH_STRESS_SEED replays a CI failure).
// Sanitizer fodder first: run under -DKFLUSH_SANITIZE=thread.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/sharded_system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "stress/stress_util.h"
#include "testing/test_util.h"
#include "util/random.h"

namespace kflush {
namespace {

struct ShardStressConfig {
  PolicyKind policy;
  AttributeKind attribute;
  const char* name;
};

class ShardStressTest : public ::testing::TestWithParam<ShardStressConfig> {};

constexpr int kProducers = 2;
constexpr int kBatchesPerProducer = 20;
constexpr int kBatchSize = 250;

TEST_P(ShardStressTest, RoutedIngestParallelFlushFanoutRace) {
  const ShardStressConfig cfg = GetParam();
  const uint64_t seed = stress::AnnounceSeed();
  const size_t shards = testing_util::TestShardCount();

  SimClock clock(1'000'000);
  ShardedSystemOptions options;
  options.system.store.memory_budget_bytes = 1 << 20;  // total; split N ways
  options.system.store.k = 10;
  options.system.store.policy = cfg.policy;
  options.system.store.attribute = cfg.attribute;
  options.system.store.clock = &clock;
  options.system.ingest_queue_capacity = 8;
  options.num_shards = shards;
  ShardedMicroblogSystem system(options);
  system.Start();

  TweetGeneratorOptions stream;
  stream.seed = seed;
  stream.vocabulary_size = 4'000;
  stream.num_users = 500;  // dense user entries so kUser actually flushes
  stream.geotagged_fraction = 1.0;
  const std::vector<GeoPoint> hotspots = MakeHotspots(stream);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::atomic<uint64_t> queries_done{0};

  std::vector<std::thread> query_threads;
  for (int t = 0; t < 2; ++t) {
    query_threads.emplace_back([&, t] {
      QueryWorkloadOptions wopts;
      wopts.seed = stress::DeriveSeed(seed, 100 + static_cast<uint64_t>(t));
      wopts.kind = t == 0 ? WorkloadKind::kUniform : WorkloadKind::kCorrelated;
      wopts.attribute = cfg.attribute;
      QueryGenerator queries(wopts, stream);
      Rng rng(stress::DeriveSeed(seed, 200 + static_cast<uint64_t>(t)));
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++n;
        if (cfg.attribute == AttributeKind::kSpatial && n % 8 == 0) {
          // Area fan-out around a hotspot: the over-fetch loop issues
          // multi-tile ORs whose tiles live on several shards, merging
          // while those shards flush.
          const GeoPoint& c = hotspots[rng.Uniform(hotspots.size())];
          const double half =
              0.03 + 0.01 * static_cast<double>(rng.Uniform(13));
          auto result = system.engine()->SearchArea(
              c.lat - half, c.lon - half, c.lat + half, c.lon + half, 10);
          if (!result.ok()) query_errors.fetch_add(1);
        } else if (cfg.attribute == AttributeKind::kUser && n % 8 == 0) {
          auto result = system.engine()->SearchUser(
              static_cast<UserId>(1 + rng.Uniform(stream.num_users)), 10);
          if (!result.ok()) query_errors.fetch_add(1);
        } else {
          auto result = system.Query(queries.Next());
          if (!result.ok()) query_errors.fetch_add(1);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Adversarial k churn across every shard at once: each shard's flusher
  // keeps rebuilding its over-k bookkeeping while routed inserts land.
  std::thread churn([&] {
    const uint32_t ks[] = {5, 10, 20, 35};
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      system.SetK(ks[i++ % 4]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      TweetGeneratorOptions my_stream = stream;
      my_stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(p));
      TweetGenerator gen(my_stream);
      for (int batch = 0; batch < kBatchesPerProducer; ++batch) {
        std::vector<Microblog> blogs;
        gen.FillBatch(kBatchSize, &blogs);
        clock.Advance(kBatchSize * stream.arrival_interval_micros);
        if (!system.Submit(std::move(blogs))) return;
      }
    });
  }

  for (auto& t : producers) t.join();
  system.Stop();  // drains every shard queue, often landing mid-flush
  stop.store(true);
  churn.join();
  for (auto& t : query_threads) t.join();

  const uint64_t produced = static_cast<uint64_t>(kProducers) *
                            kBatchesPerProducer * kBatchSize;
  EXPECT_EQ(system.accepted(), produced);
  // Every routed copy must have been digested by its owning shard; the
  // keyword attribute duplicates multi-keyword records, so copies can
  // exceed the record count but never fall below it (every tweet carries
  // at least one term under each of the three attributes here).
  EXPECT_EQ(system.digested(), system.routed_copies());
  EXPECT_GE(system.routed_copies(), produced - system.skipped_no_terms());
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_GT(queries_done.load(), 0u);

  // Per-shard quiesced invariants and memory bounds.
  for (size_t i = 0; i < system.num_shards(); ++i) {
    MicroblogStore* store = system.shard_store(i);
    EXPECT_LT(store->tracker().DataUsed(),
              store->options().memory_budget_bytes * 2)
        << "shard " << i;
    stress::CheckStoreInvariants(store);
  }

  // Post-quiesce fan-out answers still merge across shards.
  auto result = system.Query({{1}, QueryType::kSingle, 10});
  EXPECT_TRUE(result.ok());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByAttribute, ShardStressTest,
    ::testing::Values(
        ShardStressConfig{PolicyKind::kFifo, AttributeKind::kKeyword,
                          "FifoKeyword"},
        ShardStressConfig{PolicyKind::kLru, AttributeKind::kKeyword,
                          "LruKeyword"},
        ShardStressConfig{PolicyKind::kKFlushing, AttributeKind::kKeyword,
                          "KFlushingKeyword"},
        ShardStressConfig{PolicyKind::kKFlushingMK, AttributeKind::kKeyword,
                          "MKKeyword"},
        ShardStressConfig{PolicyKind::kKFlushing, AttributeKind::kSpatial,
                          "KFlushingSpatial"},
        ShardStressConfig{PolicyKind::kKFlushingMK, AttributeKind::kSpatial,
                          "MKSpatial"},
        ShardStressConfig{PolicyKind::kKFlushing, AttributeKind::kUser,
                          "KFlushingUser"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace kflush
