// Continuous-query race stress: subscribe/unsubscribe churn racing
// saturated routed ingest, parallel per-shard flush cycles, SetK churn,
// and a concurrent drainer — the TSan fodder for the SubscriptionManager
// lock order (registry -> subscription -> member tracking) and the
// publish hooks that fire from digestion and flushing threads.
//
// Correctness holds under any interleaving: every delta the single
// drainer receives for a subscription carries the next contiguous
// sequence number (a gap is a lost update), and after a drained shutdown
// the accounting invariant sub.deltas_published == sub.deltas_pushed +
// sub.deltas_dropped_on_disconnect balances exactly.
// Deterministic modulo thread interleaving: all RNG streams derive from
// one announced base seed (KFLUSH_STRESS_SEED replays a CI failure).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sharded_system.h"
#include "gen/tweet_generator.h"
#include "stress/stress_util.h"
#include "sub/subscription_manager.h"
#include "testing/test_util.h"
#include "util/random.h"

namespace kflush {
namespace {

constexpr int kProducers = 2;
constexpr int kBatchesPerProducer = 15;
constexpr int kBatchSize = 200;

class SubStressTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SubStressTest, ChurnRacesSaturatedIngestAndFlushes) {
  const uint64_t seed = stress::AnnounceSeed();
  const size_t shards = testing_util::TestShardCount();

  SimClock clock(1'000'000);
  ShardedSystemOptions options;
  options.system.store.memory_budget_bytes = 1 << 20;  // total; split N ways
  options.system.store.k = 10;
  options.system.store.policy = GetParam();
  options.system.store.clock = &clock;
  options.system.ingest_queue_capacity = 8;
  options.num_shards = shards;
  ShardedMicroblogSystem system(options);
  system.Start();

  auto subs = MakeSubscriptions(&system);
  std::atomic<uint64_t> notifications{0};
  subs->set_notifier([&](uint64_t) {
    notifications.fetch_add(1, std::memory_order_relaxed);
  });

  TweetGeneratorOptions stream;
  stream.seed = seed;
  stream.vocabulary_size = 512;  // dense terms so subscriptions see traffic
  stream.num_users = 200;

  std::atomic<bool> stop{false};
  std::mutex live_mu;
  std::vector<uint64_t> live_subs;  // guarded by live_mu

  // Churn thread: register/terminate/resize standing queries while ingest
  // and flushes run. Keeps a bounded set live at any moment.
  std::thread churn([&] {
    Rng rng(stress::DeriveSeed(seed, 1000));
    while (!stop.load(std::memory_order_relaxed)) {
      const uint32_t dice = static_cast<uint32_t>(rng.Uniform(10));
      if (dice < 5) {
        SubscriptionSpec spec;
        spec.kind = SubKind::kKeyword;
        spec.k = 1 + static_cast<uint32_t>(rng.Uniform(12));
        spec.term = static_cast<TermId>(rng.Uniform(64));  // hot prefix
        auto id = subs->Subscribe(spec);
        if (id.ok()) {
          std::lock_guard<std::mutex> lock(live_mu);
          if (live_subs.size() < 32) {
            live_subs.push_back(*id);
          } else {
            // Over the cap: replace a random one.
            const size_t victim = rng.Uniform(live_subs.size());
            ASSERT_TRUE(subs->Unsubscribe(live_subs[victim]).ok());
            live_subs[victim] = *id;
          }
        }
      } else if (dice < 7) {
        uint64_t victim = 0;
        {
          std::lock_guard<std::mutex> lock(live_mu);
          if (live_subs.size() > 1) {
            const size_t i = rng.Uniform(live_subs.size());
            victim = live_subs[i];
            live_subs.erase(live_subs.begin() + i);
          }
        }
        if (victim != 0) {
          ASSERT_TRUE(subs->Unsubscribe(victim).ok());
        }
      } else {
        uint64_t target = 0;
        {
          std::lock_guard<std::mutex> lock(live_mu);
          if (!live_subs.empty()) {
            target = live_subs[rng.Uniform(live_subs.size())];
          }
        }
        // NotFound is possible only for subs this thread already removed,
        // and it never removes without erasing from live_subs first.
        if (target != 0) {
          ASSERT_TRUE(
              subs->SetK(target, 1 + static_cast<uint32_t>(rng.Uniform(12)))
                  .ok());
        }
      }
    }
  });

  // Single drainer: the only caller of DrainDeltas, so per subscription
  // the drained stream must be seq-contiguous from 1 — any gap is a lost
  // update somewhere between publish and drain.
  std::map<uint64_t, uint64_t> next_seq;  // drainer-thread state
  std::atomic<uint64_t> drained_total{0};
  std::atomic<bool> seq_gap{false};
  auto drain_pass = [&] {
    std::vector<uint64_t> ids;
    {
      std::lock_guard<std::mutex> lock(live_mu);
      ids = live_subs;
    }
    for (uint64_t id : ids) {
      std::vector<SubDelta> deltas;
      if (!subs->DrainDeltas(id, &deltas)) continue;  // unsubscribed since
      uint64_t& expected = next_seq.emplace(id, 1).first->second;
      for (const SubDelta& delta : deltas) {
        if (delta.seq != expected) {
          seq_gap.store(true);
          ADD_FAILURE() << "sub " << id << ": drained seq " << delta.seq
                        << ", expected " << expected;
          return;
        }
        ++expected;
      }
      drained_total.fetch_add(deltas.size(), std::memory_order_relaxed);
    }
  };
  std::thread drainer([&] {
    while (!stop.load(std::memory_order_relaxed) &&
           !seq_gap.load(std::memory_order_relaxed)) {
      drain_pass();
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      TweetGeneratorOptions my_stream = stream;
      my_stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(p));
      TweetGenerator gen(my_stream);
      for (int batch = 0; batch < kBatchesPerProducer; ++batch) {
        std::vector<Microblog> blogs;
        gen.FillBatch(kBatchSize, &blogs);
        clock.Advance(kBatchSize * stream.arrival_interval_micros);
        if (!system.Submit(std::move(blogs))) return;
      }
    });
  }

  for (auto& t : producers) t.join();
  system.Stop();  // drains every shard queue; publish hooks quiesce
  stop.store(true);
  churn.join();
  drainer.join();

  // Clean drained shutdown: with ingest quiesced, one final full drain
  // empties every live outbox, so Shutdown finds nothing undrained and
  // the ledger balances with only churn-time disconnect drops.
  subs->ProcessPendingRefills();
  drain_pass();
  ASSERT_FALSE(seq_gap.load());
  subs->Shutdown();

  auto* reg = subs->metrics_registry();
  const uint64_t published = reg->counter("sub.deltas_published")->value();
  const uint64_t pushed = reg->counter("sub.deltas_pushed")->value();
  const uint64_t dropped =
      reg->counter("sub.deltas_dropped_on_disconnect")->value();
  EXPECT_EQ(published, pushed + dropped);
  EXPECT_EQ(subs->num_active(), 0u);
  EXPECT_GT(reg->counter("sub.registered")->value(), 0u);
  EXPECT_GT(notifications.load(), 0u);
  EXPECT_GT(drained_total.load(), 0u);

  for (size_t i = 0; i < system.num_shards(); ++i) {
    stress::CheckStoreInvariants(system.shard_store(i));
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, SubStressTest,
                         ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                                           PolicyKind::kKFlushing),
                         [](const auto& info) {
                           return std::string(PolicyKindName(info.param));
                         });

}  // namespace
}  // namespace kflush
