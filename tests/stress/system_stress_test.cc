// Full-system race stress: a MicroblogSystem under simultaneous producers,
// mixed-workload query threads (single / OR / AND keyword, spatial tile and
// area, user), adversarial SetK churn, and a background flusher kept busy
// by a tiny budget — so every kFlushing phase (and the MK refcount paths)
// runs concurrently with digestion and queries. Parameterized over
// policy × attribute. Deterministic modulo thread interleaving: all RNG
// streams derive from one announced base seed.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"
#include "stress/stress_util.h"
#include "util/random.h"

namespace kflush {
namespace {

struct StressConfig {
  PolicyKind policy;
  AttributeKind attribute;
  const char* name;
};

class SystemStressTest : public ::testing::TestWithParam<StressConfig> {};

constexpr int kProducers = 2;
constexpr int kBatchesPerProducer = 20;
constexpr int kBatchSize = 250;

TEST_P(SystemStressTest, IngestFlushQuerySetKRace) {
  const StressConfig cfg = GetParam();
  const uint64_t seed = stress::AnnounceSeed();

  SimClock clock(1'000'000);
  SystemOptions options;
  options.store.memory_budget_bytes = 1 << 20;  // tiny: flushes constantly
  options.store.k = 10;
  options.store.policy = cfg.policy;
  options.store.attribute = cfg.attribute;
  options.store.clock = &clock;
  options.ingest_queue_capacity = 8;
  MicroblogSystem system(options);
  system.Start();

  TweetGeneratorOptions stream;
  stream.seed = seed;
  stream.vocabulary_size = 4'000;
  stream.num_users = 500;  // dense user entries so kUser actually flushes
  stream.geotagged_fraction = 1.0;
  const std::vector<GeoPoint> hotspots = MakeHotspots(stream);

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> query_errors{0};
  std::atomic<uint64_t> queries_done{0};

  std::vector<std::thread> query_threads;
  for (int t = 0; t < 2; ++t) {
    query_threads.emplace_back([&, t] {
      QueryWorkloadOptions wopts;
      wopts.seed = stress::DeriveSeed(seed, 100 + static_cast<uint64_t>(t));
      wopts.kind = t == 0 ? WorkloadKind::kUniform : WorkloadKind::kCorrelated;
      wopts.attribute = cfg.attribute;
      QueryGenerator queries(wopts, stream);
      Rng rng(stress::DeriveSeed(seed, 200 + static_cast<uint64_t>(t)));
      uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ++n;
        if (cfg.attribute == AttributeKind::kSpatial && n % 8 == 0) {
          // Area query around a hotspot: exercises the over-fetch loop of
          // SearchArea concurrently with eviction of boundary tiles.
          const GeoPoint& c = hotspots[rng.Uniform(hotspots.size())];
          // Up to ~0.3 degrees per side: ~11x11 tiles at the default 0.029
          // degree tile edge, safely under SearchArea's 256-tile cap.
          const double half = 0.03 + 0.01 * static_cast<double>(rng.Uniform(13));
          auto result = system.engine()->SearchArea(
              c.lat - half, c.lon - half, c.lat + half, c.lon + half, 10);
          if (!result.ok()) query_errors.fetch_add(1);
        } else if (cfg.attribute == AttributeKind::kUser && n % 8 == 0) {
          auto result = system.engine()->SearchUser(
              static_cast<UserId>(1 + rng.Uniform(stream.num_users)), 10);
          if (!result.ok()) query_errors.fetch_add(1);
        } else {
          auto result = system.Query(queries.Next());
          if (!result.ok()) query_errors.fetch_add(1);
        }
        queries_done.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Adversarial k churn: every change arms k_changed_, so flush cycles keep
  // rebuilding the over-k list L while inserts charge it concurrently.
  std::thread churn([&] {
    const uint32_t ks[] = {5, 10, 20, 35};
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      system.store()->SetK(ks[i++ % 4]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      TweetGeneratorOptions my_stream = stream;
      my_stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(p));
      TweetGenerator gen(my_stream);
      for (int batch = 0; batch < kBatchesPerProducer; ++batch) {
        std::vector<Microblog> blogs;
        gen.FillBatch(kBatchSize, &blogs);
        clock.Advance(kBatchSize * stream.arrival_interval_micros);
        if (!system.Submit(std::move(blogs))) return;
      }
    });
  }

  for (auto& t : producers) t.join();
  system.Stop();  // drains the queue, often landing mid-flush
  stop.store(true);
  churn.join();
  for (auto& t : query_threads) t.join();

  EXPECT_EQ(system.digested(),
            static_cast<uint64_t>(kProducers) * kBatchesPerProducer *
                kBatchSize);
  EXPECT_EQ(query_errors.load(), 0u);
  EXPECT_GT(queries_done.load(), 0u);
  EXPECT_LT(system.store()->tracker().DataUsed(),
            options.store.memory_budget_bytes * 2);
  stress::CheckStoreInvariants(system.store());
}

INSTANTIATE_TEST_SUITE_P(
    PolicyByAttribute, SystemStressTest,
    ::testing::Values(
        StressConfig{PolicyKind::kFifo, AttributeKind::kKeyword,
                     "FifoKeyword"},
        StressConfig{PolicyKind::kLru, AttributeKind::kKeyword, "LruKeyword"},
        StressConfig{PolicyKind::kKFlushing, AttributeKind::kKeyword,
                     "KFlushingKeyword"},
        StressConfig{PolicyKind::kKFlushingMK, AttributeKind::kKeyword,
                     "MKKeyword"},
        StressConfig{PolicyKind::kKFlushing, AttributeKind::kSpatial,
                     "KFlushingSpatial"},
        StressConfig{PolicyKind::kKFlushingMK, AttributeKind::kSpatial,
                     "MKSpatial"},
        StressConfig{PolicyKind::kKFlushing, AttributeKind::kUser,
                     "KFlushingUser"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace kflush
