// Trace-recorder stress: hammer the seqlock rings from several writer
// threads with deliberately tiny capacities (constant wraparound) while a
// reader loops Snapshot()/Clear()/counter reads, and while recording is
// toggled under load. Run under TSan (labeled `stress`, see
// tests/CMakeLists.txt) this exercises the recorder's whole concurrency
// contract: wait-free emit, torn-read rejection, buffers outliving their
// threads.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/trace.h"

namespace kflush {
namespace {

// Every event the snapshot hands back must be fully formed — a torn read
// would surface as a null pointer, a foreign category, or an arg mix that
// no single Emit call ever produced.
void CheckWellFormed(const std::vector<TraceEvent>& events) {
  Timestamp prev = 0;
  for (const TraceEvent& e : events) {
    ASSERT_NE(e.name, nullptr);
    ASSERT_NE(e.category, nullptr);
    ASSERT_STREQ(e.category, "stress");
    ASSERT_TRUE(e.type == TraceEventType::kSpanBegin ||
                e.type == TraceEventType::kSpanEnd ||
                e.type == TraceEventType::kInstant);
    ASSERT_LE(e.num_args, kMaxTraceArgs);
    for (uint8_t i = 0; i < e.num_args; ++i) {
      ASSERT_NE(e.args[i].key, nullptr);
      ASSERT_NE(e.args[i].kind, TraceArg::Kind::kNone);
      if (e.args[i].kind == TraceArg::Kind::kString) {
        ASSERT_NE(e.args[i].value.str, nullptr);
      }
    }
    // The payload of each event shape is fixed; any other combination is a
    // torn slot that escaped the sequence recheck.
    if (std::strcmp(e.name, "tick") == 0) {
      ASSERT_EQ(e.num_args, 3u);
      ASSERT_EQ(e.args[0].value.i64, 7);
      ASSERT_STREQ(e.args[1].value.str, "writer");
      ASSERT_EQ(e.args[2].value.f64, 0.5);
    }
    ASSERT_GE(e.ts_micros, prev);  // snapshot is sorted
    prev = e.ts_micros;
  }
}

TEST(TraceStressTest, ConcurrentEmitSnapshotClearWithWraparound) {
  constexpr int kWriters = 4;
  constexpr size_t kTinyCapacity = 64;  // wraps after a few microseconds
  Tracer* tracer = Tracer::Global();
  tracer->ResetForTesting();
  tracer->Start(kTinyCapacity);

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop] {
      uint64_t seq = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        TraceSpan span("stress", "work", {TraceArg::Uint("seq", ++seq)});
        KFLUSH_TRACE_INSTANT("stress", "tick", TraceArg::Int("x", 7),
                             TraceArg::Str("who", "writer"),
                             TraceArg::Double("d", 0.5));
        span.End({TraceArg::Bool("ok", true)});
      }
    });
  }

  // Make sure the writers are actually running before the reader starts
  // hammering — on a fast machine the reader loop can otherwise finish
  // before the first writer is scheduled.
  while (Tracer::Global()->events_emitted() < 1000) {
    std::this_thread::yield();
  }

  for (int round = 0; round < 200; ++round) {
    const std::vector<TraceEvent> events = tracer->Snapshot();
    ASSERT_LE(events.size(), kWriters * kTinyCapacity);
    CheckWellFormed(events);
    EXPECT_GE(tracer->events_emitted(), tracer->events_dropped());
    if (round % 50 == 49) tracer->Clear();
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();

  // During the concurrent phase Clear() may race in-flight emits (it is
  // documented non-linearizable: a racing writer can republish its head
  // over wiped slots), so only loose bounds hold above. Now that writers
  // are quiesced, reset and wrap one ring deterministically to check the
  // drop accounting exactly.
  const std::vector<TraceEvent> after_load = tracer->Snapshot();
  EXPECT_LE(after_load.size(), kWriters * kTinyCapacity);
  CheckWellFormed(after_load);

  tracer->Clear();
  for (size_t i = 0; i < kTinyCapacity * 2; ++i) {
    KFLUSH_TRACE_INSTANT("stress", "fill", TraceArg::Uint("i", i));
  }
  tracer->Stop();
  EXPECT_EQ(tracer->events_emitted(), kTinyCapacity * 2);
  EXPECT_EQ(tracer->events_dropped(), kTinyCapacity)
      << "wrapping a full lap must drop exactly one ring's worth";
  const std::vector<TraceEvent> final_events = tracer->Snapshot();
  EXPECT_EQ(final_events.size(), kTinyCapacity);
  CheckWellFormed(final_events);
  tracer->ResetForTesting();
}

TEST(TraceStressTest, StartStopTogglingUnderLoad) {
  constexpr int kWriters = 3;
  Tracer* tracer = Tracer::Global();
  tracer->ResetForTesting();

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        KFLUSH_TRACE_INSTANT("stress", "tick", TraceArg::Int("x", 7),
                             TraceArg::Str("who", "writer"),
                             TraceArg::Double("d", 0.5));
      }
    });
  }

  for (int cycle = 0; cycle < 100; ++cycle) {
    tracer->Start(/*capacity_per_thread=*/32);
    CheckWellFormed(tracer->Snapshot());
    tracer->Stop();
    CheckWellFormed(tracer->Snapshot());
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  CheckWellFormed(tracer->Snapshot());
  tracer->ResetForTesting();
}

TEST(TraceStressTest, BuffersOutliveTheirThreads) {
  // Waves of short-lived threads: every ring must stay readable after its
  // owner exits, and nothing may be double-counted when later waves
  // register fresh buffers.
  Tracer* tracer = Tracer::Global();
  tracer->ResetForTesting();
  tracer->Start(/*capacity_per_thread=*/256);
  constexpr int kWaves = 8, kThreadsPerWave = 8, kEventsPerThread = 10;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::thread> threads;
    threads.reserve(kThreadsPerWave);
    for (int t = 0; t < kThreadsPerWave; ++t) {
      threads.emplace_back([] {
        for (int j = 0; j < kEventsPerThread; ++j) {
          KFLUSH_TRACE_INSTANT("stress", "hello", TraceArg::Int("j", j));
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  tracer->Stop();

  constexpr uint64_t kTotal = kWaves * kThreadsPerWave * kEventsPerThread;
  EXPECT_EQ(tracer->events_emitted(), kTotal);
  EXPECT_EQ(tracer->events_dropped(), 0u);
  EXPECT_EQ(tracer->Snapshot().size(), kTotal);
  tracer->ResetForTesting();
}

}  // namespace
}  // namespace kflush
