// Race-stress for the metrics layer, meant to run under TSan (label:
// stress). Hammers QueryMetrics::Record from several threads while a
// snapshotter loop checks the anti-tearing contract: a concurrent snapshot
// must never show hits + misses > queries (a hit ratio above 100% was the
// observable symptom of the torn reads this port fixed), and never a
// per-type hit count above its per-type query count. Also stresses
// ConcurrentHistogram's Record/Snapshot/Reset stripes.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/metrics.h"
#include "core/metrics_registry.h"

namespace kflush {
namespace {

TEST(MetricsStressTest, SnapshotNeverTearsHitRatioAbove100Percent) {
  QueryMetrics metrics;
  std::atomic<bool> stop{false};
  constexpr int kRecorders = 4;
  constexpr uint64_t kPerRecorder = 40'000;

  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&metrics, t] {
      for (uint64_t i = 0; i < kPerRecorder; ++i) {
        const auto type = static_cast<QueryType>((i + t) % 3);
        const bool hit = ((i ^ t) & 1) != 0;
        metrics.Record(type, hit, /*disk_term_reads=*/hit ? 0 : 2,
                       /*latency_micros=*/10 + i % 90);
      }
    });
  }

  std::vector<std::thread> snapshotters;
  for (int t = 0; t < 2; ++t) {
    snapshotters.emplace_back([&metrics, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        const QueryMetricsSnapshot snap = metrics.Snapshot();
        ASSERT_LE(snap.memory_hits + snap.memory_misses, snap.queries);
        for (int i = 0; i < 3; ++i) {
          ASSERT_LE(snap.hits_by_type[i], snap.queries_by_type[i]) << i;
        }
        ASSERT_LE(snap.HitRatio(), 1.0);
        ASSERT_LE(snap.latency_micros.count(), snap.queries);
      }
    });
  }

  for (auto& th : recorders) th.join();
  stop.store(true, std::memory_order_release);
  for (auto& th : snapshotters) th.join();

  // Quiesced: every equality holds exactly.
  const QueryMetricsSnapshot final_snap = metrics.Snapshot();
  const uint64_t total = kRecorders * kPerRecorder;
  EXPECT_EQ(final_snap.queries, total);
  EXPECT_EQ(final_snap.memory_hits + final_snap.memory_misses, total);
  EXPECT_EQ(final_snap.memory_hits, total / 2);
  EXPECT_EQ(final_snap.latency_micros.count(), total);
  uint64_t by_type = 0, hits_by_type = 0;
  for (int i = 0; i < 3; ++i) {
    by_type += final_snap.queries_by_type[i];
    hits_by_type += final_snap.hits_by_type[i];
  }
  EXPECT_EQ(by_type, total);
  EXPECT_EQ(hits_by_type, final_snap.memory_hits);
}

TEST(MetricsStressTest, ConcurrentHistogramRecordSnapshotReset) {
  ConcurrentHistogram h;
  std::atomic<bool> stop{false};
  constexpr int kRecorders = 4;

  std::vector<std::thread> recorders;
  for (int t = 0; t < kRecorders; ++t) {
    recorders.emplace_back([&h, &stop, t] {
      uint64_t v = 1 + static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        h.Record(v);
        v = v % 100'000 + 1;
      }
    });
  }

  for (int round = 0; round < 200; ++round) {
    const Histogram snap = h.Snapshot();
    if (snap.count() > 0) {
      EXPECT_GE(snap.max(), snap.min());
      EXPECT_GE(snap.sum(), snap.count() * snap.min());
      EXPECT_LE(snap.Percentile(50), snap.max());
    }
    if (round % 50 == 49) h.Reset();  // torn-vs-Record is allowed; no crash
  }

  stop.store(true, std::memory_order_release);
  for (auto& th : recorders) th.join();
}

TEST(MetricsStressTest, RegistryGetOrCreateRacesResolveToOneInstrument) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      Counter* c = registry.counter("race.counter");
      c->Increment();
      registry.gauge("race.gauge")->Add(1);
      registry.histogram("race.histogram")->Record(7);
      seen[static_cast<size_t>(t)] = c;
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[static_cast<size_t>(t)], seen[0]);
  }
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counter_or("race.counter"), static_cast<uint64_t>(kThreads));
  EXPECT_EQ(snap.gauges.at("race.gauge"), kThreads);
  EXPECT_EQ(snap.histograms.at("race.histogram").count(),
            static_cast<uint64_t>(kThreads));
}

}  // namespace
}  // namespace kflush
