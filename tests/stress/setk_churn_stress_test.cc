// SetK churn stress at the store level: concurrent inserters, a dedicated
// flusher thread, and a thread cycling k through adversarial values. Every
// SetK arms k_changed_, so each flush cycle rebuilds the kFlushing over-k
// list L from scratch while inserts keep charging it — the exact window
// where the over-k accounting (tracker charge vs. tracked-term count) can
// drift if insert-side tracking and the rebuild race. A deterministic
// single-threaded rebuild test rides along as the ground-truth baseline.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "core/store.h"
#include "gen/tweet_generator.h"
#include "policy/kflushing_policy.h"
#include "stress/stress_util.h"

namespace kflush {
namespace {

class SetKChurnStressTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(SetKChurnStressTest, ConcurrentInsertFlushSetK) {
  const uint64_t seed = stress::AnnounceSeed();

  SimClock clock(1'000'000);
  StoreOptions options;
  options.memory_budget_bytes = 768 << 10;
  options.k = 10;
  options.policy = GetParam();
  options.auto_flush = false;  // the flusher thread owns flushing
  options.clock = &clock;
  MicroblogStore store(options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> insert_errors{0};

  std::vector<std::thread> inserters;
  for (int p = 0; p < 2; ++p) {
    inserters.emplace_back([&, p] {
      TweetGeneratorOptions stream;
      stream.seed = stress::DeriveSeed(seed, static_cast<uint64_t>(p));
      stream.vocabulary_size = 2'000;
      TweetGenerator gen(stream);
      for (int i = 0; i < 5'000; ++i) {
        if (!store.Insert(gen.Next()).ok()) insert_errors.fetch_add(1);
        if (i % 64 == 0) clock.Advance(1'000);
      }
    });
  }

  std::thread flusher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      if (store.MemoryFull()) {
        store.FlushOnce();
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::thread churn([&] {
    const uint32_t ks[] = {3, 10, 25, 40};
    size_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      store.SetK(ks[i++ % 4]);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (auto& t : inserters) t.join();
  done.store(true);
  flusher.join();
  churn.join();

  EXPECT_EQ(insert_errors.load(), 0u);

  // Settle at a final k and run the armed rebuild once more: the over-k
  // list must come out balanced against the tracker with no threads left.
  store.SetK(10);
  store.FlushOnce();
  stress::CheckStoreInvariants(&store);
}

INSTANTIATE_TEST_SUITE_P(KFlushingVariants, SetKChurnStressTest,
                         ::testing::Values(PolicyKind::kKFlushing,
                                           PolicyKind::kKFlushingMK),
                         [](const auto& info) {
                           return info.param == PolicyKind::kKFlushing
                                      ? "KFlushing"
                                      : "KFlushingMK";
                         });

// Deterministic baseline: no concurrency, k stepped through down/up swings
// with a flush after each step. The over-k accounting must balance after
// every rebuild, and the tracked set must be consistent with what a fresh
// scan of the index reports.
TEST(SetKRebuildTest, RebuildBalancesAfterEveryStep) {
  const uint64_t seed = stress::AnnounceSeed();

  SimClock clock(1'000'000);
  StoreOptions options;
  options.memory_budget_bytes = 1 << 20;
  options.k = 20;
  options.policy = PolicyKind::kKFlushing;
  options.auto_flush = false;
  options.clock = &clock;
  MicroblogStore store(options);

  TweetGeneratorOptions stream;
  stream.seed = stress::DeriveSeed(seed, 7);
  stream.vocabulary_size = 1'000;  // dense entries: many exceed any k
  TweetGenerator gen(stream);
  for (int i = 0; i < 4'000; ++i) {
    ASSERT_TRUE(store.Insert(gen.Next()).ok());
    if (i % 64 == 0) clock.Advance(1'000);
  }

  auto* policy = dynamic_cast<KFlushingPolicy*>(store.policy());
  ASSERT_NE(policy, nullptr);

  for (uint32_t k : {5u, 40u, 3u, 25u, 10u}) {
    store.SetK(k);
    store.FlushOnce();  // runs the Phase-1 rebuild armed by SetK
    EXPECT_EQ(store.k(), k);
    EXPECT_EQ(
        store.tracker().ComponentUsed(MemoryComponent::kPolicyOverhead),
        policy->TrackedOverKTerms() * KFlushingPolicy::kBytesPerTrackedTerm)
        << "unbalanced after rebuild at k=" << k;
    stress::CheckStoreInvariants(&store);
  }
}

}  // namespace
}  // namespace kflush
