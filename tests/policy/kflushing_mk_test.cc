// Tests of the multiple-keyword extension (paper §IV-D), including the
// Figure 6 scenario.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "../testing/policy_harness.h"
#include "policy/kflushing_policy.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

TEST(KFlushingMKTest, TopKRefcountTracksMembership) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushingMK, kK);
  // Record 100 enters top-k of both its keywords.
  h.Ingest(policy.get(), 100, {1, 2});
  EXPECT_EQ(h.raw().TopKCount(100), 2u);
  // Push it out of keyword 1's top-k with k newer single-keyword posts.
  for (MicroblogId id = 1; id <= kK; ++id) h.Ingest(policy.get(), id, {1});
  EXPECT_EQ(h.raw().TopKCount(100), 1u);
}

TEST(KFlushingMKTest, Figure6Scenario) {
  // M1 has keywords W1 and W2; beyond top-k in W1, top-k in W2.
  // Extended Phase 1 must KEEP M1 in W1 (so AND queries on W1 ∧ W2 hit),
  // and only flush it once it leaves every top-k.
  // Phases 2/3 disabled: this test isolates the extended Phase 1 rule.
  PolicyHarness h;
  KFlushingOptions opts;
  opts.mk_extension = true;
  opts.enable_phase2 = false;
  opts.enable_phase3 = false;
  auto owned = std::make_unique<KFlushingPolicy>(h.ctx(), kK, opts);
  auto* policy = owned.get();
  h.Ingest(policy, 100, {1, 2});                // M1
  for (MicroblogId id = 1; id <= kK; ++id) {
    h.Ingest(policy, id, {1});                  // pushes M1 beyond k in W1
  }
  EXPECT_EQ(policy->EntrySize(1), kK + 1);

  policy->Flush(1);
  // Snapshot (a): M1 kept in W1 even though beyond top-k there.
  EXPECT_EQ(policy->EntrySize(1), kK + 1);
  EXPECT_EQ(h.raw().Pcount(100), 2u);
  auto w1_all = h.Query(policy, 1, 100);
  EXPECT_NE(std::find(w1_all.begin(), w1_all.end(), 100u), w1_all.end());

  // Snapshot (b): push M1 out of W2's top-k as well.
  for (MicroblogId id = 11; id <= 10 + kK; ++id) {
    h.Ingest(policy, id, {2});
  }
  EXPECT_EQ(h.raw().TopKCount(100), 0u);
  policy->Flush(1);
  // Now trimmed from both entries and flushed from memory entirely.
  EXPECT_EQ(policy->EntrySize(1), kK);
  EXPECT_EQ(policy->EntrySize(2), kK);
  EXPECT_FALSE(h.raw().Contains(100));
  EXPECT_EQ(h.disk().NumRecords(), 1u);
}

TEST(KFlushingMKTest, PlainKFlushingTrimsTheFigure6Record) {
  // Contrast: without MK, M1 is trimmed from W1 at the first flush.
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  h.Ingest(policy.get(), 100, {1, 2});
  for (MicroblogId id = 1; id <= kK; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(1);
  EXPECT_EQ(policy->EntrySize(1), kK);
  auto w1 = h.Query(policy.get(), 1, 100);
  EXPECT_EQ(std::find(w1.begin(), w1.end(), 100u), w1.end());
  // Still memory-resident via W2, though — the inefficiency MK removes.
  EXPECT_TRUE(h.raw().Contains(100));
  EXPECT_EQ(h.raw().Pcount(100), 1u);
}

TEST(KFlushingMKTest, Phase2KeepsPostingsSharedWithFrequentKeywords) {
  // Phase 3 disabled so the big budget exercises Phase 2 alone.
  PolicyHarness h;
  KFlushingOptions opts;
  opts.mk_extension = true;
  opts.enable_phase3 = false;
  KFlushingPolicy policy_obj(h.ctx(), kK, opts);
  auto* policy = &policy_obj;
  // W1 becomes k-filled; record 100 is in W1's top-k AND in rare W2.
  h.Ingest(policy, 100, {1, 2});
  for (MicroblogId id = 1; id <= kK - 1; ++id) {
    h.Ingest(policy, id, {1});
  }
  ASSERT_EQ(policy->EntrySize(1), kK);
  ASSERT_EQ(policy->EntrySize(2), 1u);
  // Another rare keyword to give Phase 2 a pure victim.
  h.Ingest(policy, 200, {3});

  // Force Phase 2 to consider everything under-k (big budget).
  policy->Flush(1 << 20);
  // W2's only posting (record 100) exists in k-filled W1 → kept in memory.
  EXPECT_EQ(policy->EntrySize(2), 1u);
  EXPECT_TRUE(h.raw().Contains(100));
  // W3's record had no such protection → flushed.
  EXPECT_EQ(policy->EntrySize(3), 0u);
  EXPECT_FALSE(h.raw().Contains(200));
}

TEST(KFlushingMKTest, EntryRemovalDecrementsTopKCounts) {
  PolicyHarness h;
  KFlushingOptions opts;
  opts.mk_extension = true;
  opts.enable_phase3 = false;
  KFlushingPolicy policy_obj(h.ctx(), kK, opts);
  auto* policy = &policy_obj;
  // Two under-k keywords sharing a record.
  h.Ingest(policy, 100, {1, 2});
  EXPECT_EQ(h.raw().TopKCount(100), 2u);
  // Eviction via Phase 2 (no entry with >= k postings, so no keep rule).
  policy->Flush(1 << 20);
  EXPECT_FALSE(h.raw().Contains(100));
}

TEST(KFlushingMKTest, AuxMemoryIncludesPerRecordCounters) {
  PolicyHarness h;
  auto mk = h.Make(PolicyKind::kKFlushingMK, kK);
  auto plain = h.Make(PolicyKind::kKFlushing, kK);
  for (MicroblogId id = 1; id <= 10; ++id) {
    h.Ingest(mk.get(), id, {static_cast<KeywordId>(id)});
  }
  // MK charges 4 bytes per raw-store record beyond plain kFlushing's
  // per-entry timestamps. (Both policies see the same raw store here.)
  EXPECT_GT(mk->AuxMemoryBytes(), plain->AuxMemoryBytes());
}

}  // namespace
}  // namespace kflush
