// White-box tests of the three kFlushing phases (paper §III).

#include "policy/kflushing_policy.h"

#include <gtest/gtest.h>

#include <set>

#include "../testing/policy_harness.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

TEST(KFlushingPhase1Test, TrimsBeyondTopKOnly) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  // Keyword 1 gets 12 microblogs; keyword 2 gets 3.
  MicroblogId id = 1;
  for (int i = 0; i < 12; ++i) h.Ingest(policy.get(), id++, {1});
  for (int i = 0; i < 3; ++i) h.Ingest(policy.get(), id++, {2});
  EXPECT_EQ(policy->EntrySize(1), 12u);

  // Tiny budget: Phase 1 alone satisfies it, but it still trims ALL
  // useless postings (useless data is flushed regardless of the budget).
  policy->Flush(1);
  EXPECT_EQ(policy->EntrySize(1), kK);
  EXPECT_EQ(policy->EntrySize(2), 3u);  // under-k entry untouched
  // Trimmed records (ids 1..7, single-keyword) left memory entirely.
  for (MicroblogId trimmed = 1; trimmed <= 7; ++trimmed) {
    EXPECT_FALSE(h.raw().Contains(trimmed)) << trimmed;
  }
  // Survivors are the most recent 5: ids 8..12.
  auto ids = h.Query(policy.get(), 1, kK);
  EXPECT_EQ(ids, (std::vector<MicroblogId>{12, 11, 10, 9, 8}));
}

TEST(KFlushingPhase1Test, TrimmedPostingsRegisteredOnDisk) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(1);
  std::vector<Posting> disk_postings;
  ASSERT_TRUE(h.disk().QueryTerm(1, 100, &disk_postings).ok());
  EXPECT_EQ(disk_postings.size(), 5u);  // ids 1..5 went to disk
  EXPECT_EQ(h.disk().NumRecords(), 5u);  // payloads drained too
}

TEST(KFlushingPhase1Test, SharedRecordStaysUntilUnreferenced) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  // Record 100 carries keywords 1 and 2. Keyword 1 then overflows so 100
  // is beyond top-k there; keyword 2 stays small so 100 remains top-k.
  h.Ingest(policy.get(), 100, {1, 2});
  for (MicroblogId id = 1; id <= 9; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(1);
  EXPECT_EQ(policy->EntrySize(1), kK);
  // Record 100 was trimmed from keyword 1 but is still referenced by 2.
  EXPECT_TRUE(h.raw().Contains(100));
  EXPECT_EQ(h.raw().Pcount(100), 1u);
  auto kw2 = h.Query(policy.get(), 2, kK);
  EXPECT_EQ(kw2, (std::vector<MicroblogId>{100}));
  // But its association with keyword 1 is on disk now.
  std::vector<Posting> disk_postings;
  ASSERT_TRUE(h.disk().QueryTerm(1, 100, &disk_postings).ok());
  bool found = false;
  for (const Posting& p : disk_postings) found |= (p.id == 100);
  EXPECT_TRUE(found);
}

TEST(KFlushingPhase1Test, OverKListTracksAndClears) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  auto* kf = static_cast<KFlushingPolicy*>(policy.get());
  for (MicroblogId id = 1; id <= 6; ++id) h.Ingest(policy.get(), id, {1});
  EXPECT_EQ(kf->TrackedOverKTerms(), 1u);
  for (MicroblogId id = 7; id <= 9; ++id) h.Ingest(policy.get(), id, {2});
  EXPECT_EQ(kf->TrackedOverKTerms(), 1u);  // keyword 2 never crossed k
  policy->Flush(1);
  EXPECT_EQ(kf->TrackedOverKTerms(), 0u);  // L wiped after Phase 1
  // Crossing again re-tracks.
  h.Ingest(policy.get(), 10, {1});
  EXPECT_EQ(kf->TrackedOverKTerms(), 1u);
}

TEST(KFlushingPhase2Test, EvictsLeastRecentlyArrivedUnderKEntries) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  // Three under-k keywords arriving in order 10, 11, 12 (2 postings each);
  // no over-k entries, so Phase 1 frees nothing.
  for (KeywordId kw : {10, 11, 12}) {
    h.Ingest(policy.get(), kw * 100 + 1, {kw});
    h.Ingest(policy.get(), kw * 100 + 2, {kw});
  }
  // Need enough for roughly one entry: Phase 2 must pick keyword 10
  // (least recently arrived).
  const size_t one_entry = 2 * (RawDataStore::RecordBytes(testing_util::MakeBlog(
                                   1, 1, {10})) +
                               PostingList::kBytesPerPosting);
  policy->Flush(one_entry);
  EXPECT_EQ(policy->EntrySize(10), 0u);
  EXPECT_GT(policy->EntrySize(12), 0u);  // most recent survives
  EXPECT_FALSE(h.raw().Contains(1001));
  EXPECT_FALSE(h.raw().Contains(1002));
}

TEST(KFlushingPhase2Test, FreesAtLeastRequestedWhenPossible) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  for (KeywordId kw = 1; kw <= 50; ++kw) {
    h.Ingest(policy.get(), kw, {kw});
  }
  const size_t need = 4000;
  const size_t freed = policy->Flush(need);
  EXPECT_GE(freed, need);
  EXPECT_LT(policy->NumTerms(), 50u);
  EXPECT_GT(policy->NumTerms(), 0u);  // did not flush everything
}

TEST(KFlushingPhase3Test, EvictsLeastRecentlyQueriedWhenAllKFilled) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  MicroblogId id = 1;
  // Three keywords with exactly k postings each: Phases 1 and 2 find
  // nothing to flush.
  for (KeywordId kw : {1, 2, 3}) {
    for (uint32_t i = 0; i < kK; ++i) h.Ingest(policy.get(), id++, {kw});
  }
  // Query keywords 2 and 3 (recently queried); 1 is cold.
  h.Query(policy.get(), 2, kK);
  h.Query(policy.get(), 3, kK);

  const size_t one_entry_cost = kK * 200;  // generous single-entry estimate
  policy->Flush(one_entry_cost);
  EXPECT_EQ(policy->EntrySize(1), 0u);  // least recently queried evicted
  EXPECT_EQ(policy->EntrySize(2), kK);
  EXPECT_EQ(policy->EntrySize(3), kK);
  const PolicyStats stats = policy->stats();
  EXPECT_GT(stats.phases[2].postings, 0u);
  EXPECT_EQ(stats.phases[1].postings, 0u);
}

TEST(KFlushingTest, PhasesRunInOrderAndStopAtBudget) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  MicroblogId id = 1;
  // Over-k keyword (Phase 1 fodder), under-k keywords (Phase 2 fodder).
  for (int i = 0; i < 30; ++i) h.Ingest(policy.get(), id++, {1});
  for (KeywordId kw = 2; kw <= 6; ++kw) h.Ingest(policy.get(), id++, {kw});
  // Budget small enough that Phase 1 alone covers it: Phase 2 must not run.
  policy->Flush(100);
  const PolicyStats stats = policy->stats();
  EXPECT_EQ(stats.phases[0].postings, 25u);
  EXPECT_EQ(stats.phases[1].postings, 0u);
  EXPECT_EQ(stats.phases[2].postings, 0u);
  for (KeywordId kw = 2; kw <= 6; ++kw) {
    EXPECT_EQ(policy->EntrySize(kw), 1u);
  }
}

TEST(KFlushingTest, Phase2DisabledFallsThroughToPhase3) {
  PolicyHarness h;
  KFlushingOptions opts;
  opts.enable_phase2 = false;
  KFlushingPolicy policy(h.ctx(), kK, opts);
  MicroblogId id = 1;
  for (KeywordId kw = 1; kw <= 4; ++kw) {
    h.Ingest(&policy, id++, {kw});
  }
  policy.Flush(2000);
  const PolicyStats stats = policy.stats();
  EXPECT_EQ(stats.phases[1].postings, 0u);
  EXPECT_GT(stats.phases[2].postings, 0u);
}

TEST(KFlushingTest, Phase1OnlySaturates) {
  // With only Phase 1 enabled, repeated flushes free less and less —
  // the Figure 5(a) behaviour.
  PolicyHarness h;
  KFlushingOptions opts;
  opts.enable_phase2 = false;
  opts.enable_phase3 = false;
  KFlushingPolicy policy(h.ctx(), kK, opts);
  MicroblogId id = 1;
  for (int i = 0; i < 40; ++i) h.Ingest(&policy, id++, {1});
  const size_t freed1 = policy.Flush(1 << 20);
  EXPECT_GT(freed1, 0u);
  // No new arrivals: a second flush finds nothing useless.
  const size_t freed2 = policy.Flush(1 << 20);
  EXPECT_EQ(freed2, 0u);
}

TEST(KFlushingTest, DynamicKDecreaseAppliesNextFlush) {
  // Phases 2/3 disabled: with a single exactly-k entry they would evict it
  // wholesale, which is not what this test is about.
  PolicyHarness h;
  KFlushingOptions opts;
  opts.enable_phase2 = false;
  opts.enable_phase3 = false;
  KFlushingPolicy policy(h.ctx(), kK, opts);
  for (MicroblogId id = 1; id <= 5; ++id) h.Ingest(&policy, id, {1});
  policy.Flush(1);
  EXPECT_EQ(policy.EntrySize(1), 5u);  // exactly k: nothing trimmed
  policy.SetK(2);
  // Entry (size 5 > new k=2) is not in L; the k-change rescan must find it.
  policy.Flush(1);
  EXPECT_EQ(policy.EntrySize(1), 2u);
}

TEST(KFlushingTest, DynamicKIncreaseAccumulatesMore) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, 2);
  for (MicroblogId id = 1; id <= 6; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(1);
  EXPECT_EQ(policy->EntrySize(1), 2u);
  policy->SetK(4);
  for (MicroblogId id = 7; id <= 12; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(1);
  EXPECT_EQ(policy->EntrySize(1), 4u);  // new k honored
}

TEST(KFlushingTest, AuxMemoryAccountsForTrackingStructures) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  const size_t before = policy->AuxMemoryBytes();
  for (MicroblogId id = 1; id <= 20; ++id) {
    h.Ingest(policy.get(), id, {static_cast<KeywordId>(id % 2)});
  }
  EXPECT_GT(policy->AuxMemoryBytes(), before);
}

TEST(KFlushingTest, FlushOnEmptyPolicyIsSafe) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  EXPECT_EQ(policy->Flush(1 << 20), 0u);
  EXPECT_EQ(policy->stats().flush_cycles, 1u);
}

TEST(KFlushingTest, KindNames) {
  PolicyHarness h;
  auto plain = h.Make(PolicyKind::kKFlushing, kK);
  auto mk = h.Make(PolicyKind::kKFlushingMK, kK);
  EXPECT_STREQ(plain->name(), "kFlushing");
  EXPECT_STREQ(mk->name(), "kFlushing-MK");
}

}  // namespace
}  // namespace kflush
