// Cross-policy property suite: invariants every flushing policy must
// preserve through arbitrary ingest/flush/query interleavings.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "../testing/policy_harness.h"
#include "util/random.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

class PolicyInvariantsTest : public ::testing::TestWithParam<PolicyKind> {
 protected:
  /// Runs a randomized workload: skewed multi-keyword ingest interleaved
  /// with queries and flushes. Records ground truth per term.
  void RunWorkload(FlushPolicy* policy, PolicyHarness* h, int rounds) {
    Rng rng(2024);
    MicroblogId next_id = 1;
    for (int round = 0; round < rounds; ++round) {
      // Ingest a burst with Zipf-ish keyword choice over 30 keywords.
      for (int i = 0; i < 40; ++i) {
        std::vector<KeywordId> kws;
        const uint32_t nkw = rng.OneNPlusGeometric(0.4, 3);
        while (kws.size() < nkw) {
          // Skewed: half the mass on keywords 0-2.
          KeywordId kw = rng.Bernoulli(0.5)
                             ? static_cast<KeywordId>(rng.Uniform(3))
                             : static_cast<KeywordId>(rng.Uniform(30));
          if (std::find(kws.begin(), kws.end(), kw) == kws.end()) {
            kws.push_back(kw);
          }
        }
        for (KeywordId kw : kws) truth_[kw].insert(next_id);
        h->Ingest(policy, next_id, kws);
        ++next_id;
      }
      // Query a few keywords.
      for (int q = 0; q < 5; ++q) {
        h->Query(policy, rng.Uniform(30), kK);
      }
      // Flush every other round.
      if (round % 2 == 1) {
        policy->Flush(4096);
      }
    }
  }

  std::map<TermId, std::set<MicroblogId>> truth_;
};

TEST_P(PolicyInvariantsTest, RawStoreAccountingMatchesTracker) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 10);
  EXPECT_EQ(h.tracker().ComponentUsed(MemoryComponent::kRawStore),
            h.raw().MemoryBytes());
}

TEST_P(PolicyInvariantsTest, NoUnreferencedRecordSurvivesFlush) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 10);
  policy->Flush(16 * 1024);
  h.raw().ForEach([](const Microblog& blog, uint32_t pcount, uint32_t) {
    EXPECT_GT(pcount, 0u) << "orphaned record " << blog.id;
  });
}

TEST_P(PolicyInvariantsTest, MemoryUnionDiskCoversEveryPosting) {
  // Completeness: for every term, every id ever inserted under it is
  // either in the in-memory entry or registered as a disk posting — the
  // property that makes miss-path answers exact (paper §VI).
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 10);
  for (const auto& [term, ids] : truth_) {
    std::vector<MicroblogId> mem;
    policy->QueryTerm(term, ~size_t{0}, &mem, false);
    std::vector<Posting> disk;
    ASSERT_TRUE(h.disk().QueryTerm(term, ~size_t{0}, &disk).ok());
    std::set<MicroblogId> covered(mem.begin(), mem.end());
    for (const Posting& p : disk) covered.insert(p.id);
    for (MicroblogId id : ids) {
      EXPECT_TRUE(covered.count(id) > 0)
          << "term " << term << " lost id " << id;
    }
  }
}

TEST_P(PolicyInvariantsTest, FlushedRecordPayloadsReachDisk) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 10);
  // Every id ever ingested is either memory-resident or on disk.
  std::set<MicroblogId> all_ids;
  for (const auto& [term, ids] : truth_) {
    all_ids.insert(ids.begin(), ids.end());
  }
  size_t missing = 0;
  for (MicroblogId id : all_ids) {
    if (h.raw().Contains(id)) continue;
    Microblog blog;
    if (!h.disk().GetRecord(id, &blog).ok()) ++missing;
  }
  EXPECT_EQ(missing, 0u);
}

TEST_P(PolicyInvariantsTest, FlushFreesRequestedBytesWhenAvailable) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 8);
  const size_t data_before = h.tracker().DataUsed();
  const size_t need = data_before / 4;
  const size_t freed = policy->Flush(need);
  EXPECT_GE(freed, need);
  EXPECT_LE(h.tracker().DataUsed(), data_before - need);
}

TEST_P(PolicyInvariantsTest, QueryNeverReturnsFlushedIds) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 10);
  for (TermId term = 0; term < 30; ++term) {
    std::vector<MicroblogId> ids;
    policy->QueryTerm(term, ~size_t{0}, &ids, false);
    for (MicroblogId id : ids) {
      EXPECT_TRUE(h.raw().Contains(id))
          << "policy " << policy->name() << " term " << term
          << " returned evicted id " << id;
    }
  }
}

TEST_P(PolicyInvariantsTest, QueryResultsAreRankDescending) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 6);
  for (TermId term = 0; term < 30; ++term) {
    std::vector<MicroblogId> ids;
    policy->QueryTerm(term, ~size_t{0}, &ids, false);
    Timestamp prev = ~Timestamp{0};
    for (MicroblogId id : ids) {
      auto blog = h.raw().Get(id);
      ASSERT_TRUE(blog.has_value());
      EXPECT_LE(blog->created_at, prev);
      prev = blog->created_at;
    }
  }
}

TEST_P(PolicyInvariantsTest, RepeatedFullDrainIsStable) {
  PolicyHarness h;
  auto policy = h.Make(GetParam(), kK, /*fifo_segment_bytes=*/8 * 1024);
  RunWorkload(policy.get(), &h, 4);
  // Drain everything, twice (the second must be a harmless no-op).
  policy->Flush(~size_t{0} >> 1);
  const size_t after_first = h.raw().size();
  policy->Flush(~size_t{0} >> 1);
  EXPECT_LE(h.raw().size(), after_first);
  // System still works after total drain.
  h.Ingest(policy.get(), 999999, {1});
  std::vector<MicroblogId> ids;
  policy->QueryTerm(1, kK, &ids, false);
  EXPECT_FALSE(ids.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariantsTest,
    ::testing::Values(PolicyKind::kFifo, PolicyKind::kLru,
                      PolicyKind::kKFlushing, PolicyKind::kKFlushingMK),
    [](const auto& info) {
      switch (info.param) {
        case PolicyKind::kFifo:
          return std::string("Fifo");
        case PolicyKind::kLru:
          return std::string("Lru");
        case PolicyKind::kKFlushing:
          return std::string("KFlushing");
        case PolicyKind::kKFlushingMK:
          return std::string("KFlushingMK");
      }
      return std::string("Unknown");
    });

}  // namespace
}  // namespace kflush
