#include "policy/fifo_policy.h"

#include <gtest/gtest.h>

#include "../testing/policy_harness.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

TEST(FifoPolicyTest, QueryReturnsMostRecent) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK);
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  auto ids = h.Query(policy.get(), 1, 3);
  EXPECT_EQ(ids, (std::vector<MicroblogId>{10, 9, 8}));
  EXPECT_EQ(policy->EntrySize(1), 10u);
}

TEST(FifoPolicyTest, SealsSegmentsAtByteThreshold) {
  PolicyHarness h;
  // Tiny segments: every couple of records seals one.
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/600);
  auto* fifo = static_cast<FifoPolicy*>(policy.get());
  EXPECT_EQ(fifo->NumSegments(), 1u);
  for (MicroblogId id = 1; id <= 20; ++id) h.Ingest(policy.get(), id, {1});
  EXPECT_GT(fifo->NumSegments(), 3u);
  // Queries still see everything across segments.
  EXPECT_EQ(policy->EntrySize(1), 20u);
  auto ids = h.Query(policy.get(), 1, 20);
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_EQ(ids.front(), 20u);
  EXPECT_EQ(ids.back(), 1u);
}

TEST(FifoPolicyTest, FlushDropsOldestWholesale) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/600);
  for (MicroblogId id = 1; id <= 20; ++id) h.Ingest(policy.get(), id, {1});
  const size_t freed = policy->Flush(600);
  EXPECT_GE(freed, 600u);
  // The oldest records are gone from memory, newest survive.
  EXPECT_FALSE(h.raw().Contains(1));
  EXPECT_FALSE(h.raw().Contains(2));
  EXPECT_TRUE(h.raw().Contains(20));
  // Flushed records reachable on disk, postings registered.
  std::vector<Posting> disk_postings;
  ASSERT_TRUE(h.disk().QueryTerm(1, 100, &disk_postings).ok());
  EXPECT_GE(disk_postings.size(), 2u);
  Microblog blog;
  EXPECT_TRUE(h.disk().GetRecord(1, &blog).ok());
}

TEST(FifoPolicyTest, FlushEverythingLeavesWorkingSystem) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, 1 << 20);
  for (MicroblogId id = 1; id <= 5; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(~size_t{0} >> 1);  // absurd budget: flush everything
  EXPECT_EQ(h.raw().size(), 0u);
  EXPECT_EQ(policy->EntrySize(1), 0u);
  // Still ingestible afterwards.
  h.Ingest(policy.get(), 6, {1});
  EXPECT_EQ(policy->EntrySize(1), 1u);
}

TEST(FifoPolicyTest, KFilledCountsAcrossSegments) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/600);
  // Keyword 1: 10 postings spread over several segments; keyword 2: 2.
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  h.Ingest(policy.get(), 11, {2});
  h.Ingest(policy.get(), 12, {2});
  EXPECT_EQ(policy->NumKFilledTerms(), 1u);
  EXPECT_EQ(policy->NumTerms(), 2u);
  std::vector<size_t> sizes;
  policy->CollectEntrySizes(&sizes);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 10}));
}

TEST(FifoPolicyTest, MultiKeywordRecordFlushedOnce) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, 1 << 20);
  h.Ingest(policy.get(), 1, {1, 2, 3});
  policy->Flush(~size_t{0} >> 1);
  EXPECT_EQ(h.disk().NumRecords(), 1u);
  EXPECT_EQ(h.disk().NumPostings(), 3u);  // one per keyword
}

TEST(FifoPolicyTest, NegligibleAuxMemory) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/600);
  for (MicroblogId id = 1; id <= 100; ++id) {
    h.Ingest(policy.get(), id, {static_cast<KeywordId>(id % 10)});
  }
  // FIFO tracks nothing per item: aux memory is segment headers only.
  EXPECT_LT(policy->AuxMemoryBytes(), 2048u);
}

TEST(FifoPolicyTest, StatsCountFlushedRecords) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/600);
  for (MicroblogId id = 1; id <= 20; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(600);
  const PolicyStats stats = policy->stats();
  EXPECT_EQ(stats.flush_cycles, 1u);
  EXPECT_GT(stats.records_flushed, 0u);
  EXPECT_EQ(stats.records_flushed, h.disk().NumRecords());
}

}  // namespace
}  // namespace kflush
