// Memory-accounting drift regression tests: the byte count a policy
// *reports* freeing from a Flush() must equal the bytes that actually left
// the tracked data components (raw store + index). Drift here silently
// corrupts the flush trigger: the store thinks it freed B% of the budget
// while the tracker disagrees, so cycles either thrash or under-flush.
// (FIFO once double-counted posting bytes — the segment's MemoryBytes()
// already covers them — which these tests now pin down for all policies.)

#include <gtest/gtest.h>

#include <vector>

#include "../testing/policy_harness.h"
#include "policy/flush_policy.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

std::vector<PolicyKind> AllKinds() {
  return {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
          PolicyKind::kKFlushingMK};
}

// Ingests a mixed workload: some over-k keywords (Phase 1 fodder), some
// under-k (Phase 2 fodder), some multi-keyword records (shared pcounts).
void IngestMixed(PolicyHarness* h, FlushPolicy* policy) {
  MicroblogId id = 1;
  for (int i = 0; i < 40; ++i) h->Ingest(policy, id++, {1});
  for (int i = 0; i < 25; ++i) h->Ingest(policy, id++, {2});
  for (KeywordId kw = 3; kw <= 12; ++kw) {
    h->Ingest(policy, id++, {kw});
    h->Ingest(policy, id++, {kw, static_cast<KeywordId>(kw + 100)});
  }
}

TEST(FlushAccountingTest, ReportedFreedMatchesTrackerDeltaAllPolicies) {
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/2048);
    IngestMixed(&h, policy.get());

    const size_t data_before = h.tracker().DataUsed();
    const size_t freed = policy->Flush(4096);
    const size_t data_after = h.tracker().DataUsed();

    ASSERT_GT(freed, 0u) << PolicyKindName(kind);
    EXPECT_EQ(data_before - data_after, freed)
        << PolicyKindName(kind)
        << ": reported freed bytes drifted from tracker delta";
    // The transient flush buffer must be fully drained after the cycle.
    EXPECT_EQ(h.tracker().ComponentUsed(MemoryComponent::kFlushBuffer), 0u)
        << PolicyKindName(kind);
  }
}

TEST(FlushAccountingTest, RepeatedCyclesNeverAccumulateDrift) {
  // Drift compounds across cycles; three back-to-back flushes with fresh
  // arrivals in between must each balance exactly.
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    MicroblogId id = 1;
    for (int cycle = 0; cycle < 3; ++cycle) {
      for (int i = 0; i < 30; ++i) {
        h.Ingest(policy.get(), id++,
                 {static_cast<KeywordId>(1 + (i % 7)), 500});
      }
      const size_t before = h.tracker().DataUsed();
      const size_t freed = policy->Flush(2048);
      EXPECT_EQ(before - h.tracker().DataUsed(), freed)
          << PolicyKindName(kind) << " cycle " << cycle;
    }
  }
}

TEST(FlushAccountingTest, FlushAtBudgetBoundaryMeetsRequest) {
  // The store's trigger asks for exactly B% of the budget; with plenty of
  // flushable content every policy must free at least that much, and the
  // report must still balance at the boundary.
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h(/*budget_bytes=*/64 << 10);
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    MicroblogId id = 1;
    while (!h.tracker().DataFull()) {
      h.Ingest(policy.get(), id++, {static_cast<KeywordId>(1 + (id % 50))});
    }
    const size_t request = h.tracker().budget() / 10;  // B = 10%
    const size_t before = h.tracker().DataUsed();
    const size_t freed = policy->Flush(request);
    EXPECT_GE(freed, request) << PolicyKindName(kind);
    EXPECT_EQ(before - h.tracker().DataUsed(), freed) << PolicyKindName(kind);
    EXPECT_LE(h.tracker().DataUsed(), h.tracker().budget())
        << PolicyKindName(kind) << ": still over budget after flush";
  }
}

TEST(FlushAccountingTest, StatsConserveAcrossPhases) {
  // Per-phase stats must decompose the cycle totals exactly:
  //   records_flushed == sum(phases[i].records)   (same for bytes/postings)
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    IngestMixed(&h, policy.get());
    policy->Flush(1 << 14);

    const PolicyStats stats = policy->stats();
    uint64_t records = 0, record_bytes = 0, postings = 0;
    for (int i = 0; i < 3; ++i) {
      records += stats.phases[i].records;
      record_bytes += stats.phases[i].record_bytes;
      postings += stats.phases[i].postings;
    }
    EXPECT_EQ(stats.records_flushed, records) << PolicyKindName(kind);
    EXPECT_EQ(stats.record_bytes_flushed, record_bytes)
        << PolicyKindName(kind);
    EXPECT_EQ(stats.postings_dropped, postings) << PolicyKindName(kind);
  }
}

}  // namespace
}  // namespace kflush
