// White-box tests of the Phase 2/3 single-pass O(n) victim-selection
// algorithm (paper §III-B): the selected set must (a) cover the byte
// target whenever the candidates can, and (b) prefer the oldest order
// keys, replacing newer members whenever an older candidate fits.

#include <gtest/gtest.h>

#include <algorithm>

#include "policy/kflushing_policy.h"
#include "util/random.h"

namespace kflush {

/// Friend of KFlushingPolicy: exposes the private selection routine.
class KFlushingPolicyTestPeer {
 public:
  using Candidate = KFlushingPolicy::Candidate;

  static std::vector<Candidate> Select(std::vector<Candidate> candidates,
                                       size_t target) {
    return KFlushingPolicy::SelectVictims(std::move(candidates), target);
  }
};

namespace {

using Candidate = KFlushingPolicyTestPeer::Candidate;

size_t TotalBytes(const std::vector<Candidate>& v) {
  size_t sum = 0;
  for (const auto& c : v) sum += c.bytes;
  return sum;
}

TEST(SelectVictimsTest, EmptyCandidates) {
  EXPECT_TRUE(KFlushingPolicyTestPeer::Select({}, 100).empty());
}

TEST(SelectVictimsTest, SelectsOldestWhenEqualSizes) {
  std::vector<Candidate> candidates = {
      {1, /*order_key=*/50, /*bytes=*/100},
      {2, 10, 100},
      {3, 30, 100},
      {4, 20, 100},
  };
  auto selected = KFlushingPolicyTestPeer::Select(candidates, 200);
  ASSERT_EQ(selected.size(), 2u);
  std::vector<TermId> terms;
  for (const auto& c : selected) terms.push_back(c.term);
  std::sort(terms.begin(), terms.end());
  EXPECT_EQ(terms, (std::vector<TermId>{2, 4}));  // the two oldest
}

TEST(SelectVictimsTest, MeetsTargetWhenPossible) {
  std::vector<Candidate> candidates;
  for (TermId t = 0; t < 50; ++t) {
    candidates.push_back({t, t, 10 + t});
  }
  for (size_t target : {1u, 50u, 300u, 1000u}) {
    auto selected = KFlushingPolicyTestPeer::Select(candidates, target);
    EXPECT_GE(TotalBytes(selected), target) << "target=" << target;
  }
}

TEST(SelectVictimsTest, SelectsEverythingWhenTargetExceedsTotal) {
  std::vector<Candidate> candidates = {{1, 5, 10}, {2, 6, 20}, {3, 7, 30}};
  auto selected = KFlushingPolicyTestPeer::Select(candidates, 1'000'000);
  EXPECT_EQ(selected.size(), 3u);
}

TEST(SelectVictimsTest, SingleCandidateCoversTarget) {
  std::vector<Candidate> candidates = {{1, 5, 500}};
  auto selected = KFlushingPolicyTestPeer::Select(candidates, 100);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0].term, 1u);
}

TEST(SelectVictimsTest, ReplacementKeepsBudgetSatisfied) {
  // A newer large entry is replaced by an older one only if the sum still
  // covers the target; otherwise the older is added on top (paper's
  // "inserted without removing H's most recent keyword").
  std::vector<Candidate> candidates = {
      {1, /*order_key=*/100, /*bytes=*/100},  // first: covers target alone
      {2, 1, 40},                             // older but small
      {3, 2, 40},
  };
  auto selected = KFlushingPolicyTestPeer::Select(candidates, 100);
  EXPECT_GE(TotalBytes(selected), 100u);
  // Candidates 2 and 3 can't cover 100 alone; all orderings keep >= 100.
}

TEST(SelectVictimsTest, EqualTimestampsBreakTiesByTermIdDeterministically) {
  // All candidates share one order key (a burst of same-timestamp
  // arrivals): the heap must converge to the smallest term ids no matter
  // what order the hash-map scan handed them over — the replayability
  // property the (order_key, term) tuple comparison exists for.
  std::vector<Candidate> candidates;
  for (TermId t = 0; t < 12; ++t) {
    candidates.push_back({t, /*order_key=*/777, /*bytes=*/100});
  }
  const std::vector<TermId> expected{0, 1, 2, 3};  // 4 * 100 covers 400
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<Candidate> shuffled = candidates;
    rng.Shuffle(&shuffled);
    auto selected = KFlushingPolicyTestPeer::Select(shuffled, 400);
    std::vector<TermId> terms;
    for (const auto& c : selected) terms.push_back(c.term);
    std::sort(terms.begin(), terms.end());
    EXPECT_EQ(terms, expected) << "round " << round;
  }
}

TEST(SelectVictimsTest, TermIdBreaksTiesOnlyWhenTimestampsEqual) {
  // An older timestamp still beats a smaller term id: tie-breaking must
  // not change the paper's least-recent-first ordering.
  std::vector<Candidate> candidates = {
      {1, /*order_key=*/50, /*bytes=*/100},
      {9, /*order_key=*/10, /*bytes=*/100},  // oldest, despite largest term
      {2, /*order_key=*/50, /*bytes=*/100},
  };
  auto selected = KFlushingPolicyTestPeer::Select(candidates, 200);
  ASSERT_EQ(selected.size(), 2u);
  std::vector<TermId> terms;
  for (const auto& c : selected) terms.push_back(c.term);
  std::sort(terms.begin(), terms.end());
  EXPECT_EQ(terms, (std::vector<TermId>{1, 9}));  // 9 (oldest) + tie-break 1
}

TEST(SelectVictimsTest, PrefersOldOverNewUnderRandomInputs) {
  // Property sweep: selection quality — the selected set's mean order key
  // must not exceed the rejected set's mean order key (older preferred).
  Rng rng(321);
  for (int round = 0; round < 20; ++round) {
    std::vector<Candidate> candidates;
    const size_t n = 20 + rng.Uniform(100);
    size_t total = 0;
    for (TermId t = 0; t < n; ++t) {
      Candidate c{t, rng.Uniform(100000), 10 + rng.Uniform(500)};
      total += c.bytes;
      candidates.push_back(c);
    }
    const size_t target = total / 4;
    auto selected = KFlushingPolicyTestPeer::Select(candidates, target);
    ASSERT_GE(TotalBytes(selected), target);

    std::vector<bool> is_selected(n, false);
    for (const auto& c : selected) is_selected[c.term] = true;
    double sel_sum = 0, rej_sum = 0;
    size_t sel_n = 0, rej_n = 0;
    for (const auto& c : candidates) {
      if (is_selected[c.term]) {
        sel_sum += static_cast<double>(c.order_key);
        ++sel_n;
      } else {
        rej_sum += static_cast<double>(c.order_key);
        ++rej_n;
      }
    }
    if (sel_n > 0 && rej_n > 0) {
      EXPECT_LT(sel_sum / static_cast<double>(sel_n),
                rej_sum / static_cast<double>(rej_n))
          << "round " << round;
    }
  }
}

}  // namespace
}  // namespace kflush
