// Eviction audit trail tests: every policy's per-victim audit records must
// reconcile *exactly* with the aggregate PhaseStats counters (both sides
// are fed by the same deltas, so any drift is an instrumentation bug), and
// each policy must stamp its victims with the metadata that makes a trace
// replayable — phase, term, heap rank, order key, record id.

#include <gtest/gtest.h>

#include <vector>

#include "../testing/policy_harness.h"
#include "policy/flush_policy.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

std::vector<PolicyKind> AllKinds() {
  return {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
          PolicyKind::kKFlushingMK};
}

// Mixed workload (same shape as flush_accounting_test.cc): over-k keywords
// for Phase 1, under-k keywords for Phase 2, multi-keyword records for
// shared pcounts.
void IngestMixed(PolicyHarness* h, FlushPolicy* policy) {
  MicroblogId id = 1;
  for (int i = 0; i < 40; ++i) h->Ingest(policy, id++, {1});
  for (int i = 0; i < 25; ++i) h->Ingest(policy, id++, {2});
  for (KeywordId kw = 3; kw <= 12; ++kw) {
    h->Ingest(policy, id++, {kw});
    h->Ingest(policy, id++, {kw, static_cast<KeywordId>(kw + 100)});
  }
}

TEST(EvictionAuditTest, AuditSumsReconcileWithPhaseStatsAllPolicies) {
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    EvictionAuditTrail trail;
    policy->set_audit_trail(&trail);
    IngestMixed(&h, policy.get());
    ASSERT_GT(policy->Flush(1 << 14), 0u) << PolicyKindName(kind);

    EXPECT_GT(trail.size(), 0u) << PolicyKindName(kind);
    const Status s = ReconcileAuditWithStats(trail.Records(), policy->stats());
    EXPECT_TRUE(s.ok()) << PolicyKindName(kind) << ": " << s.ToString();
  }
}

TEST(EvictionAuditTest, ReconciliationHoldsAcrossRepeatedCycles) {
  // The trail covers the policy's lifetime; per-phase sums must stay exact
  // as cycles accumulate with fresh arrivals in between.
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    EvictionAuditTrail trail;
    policy->set_audit_trail(&trail);
    MicroblogId id = 1;
    for (int cycle = 0; cycle < 3; ++cycle) {
      for (int i = 0; i < 30; ++i) {
        h.Ingest(policy.get(), id++,
                 {static_cast<KeywordId>(1 + (i % 7)), 500});
      }
      policy->Flush(2048);
      const Status s =
          ReconcileAuditWithStats(trail.Records(), policy->stats());
      EXPECT_TRUE(s.ok()) << PolicyKindName(kind) << " cycle " << cycle
                          << ": " << s.ToString();
    }
  }
}

TEST(EvictionAuditTest, BytesFreedSumMatchesFlushReturn) {
  // Every byte a flush cycle reports freeing must sit inside some victim
  // scope — the audit trail partitions the freed total.
  for (PolicyKind kind : AllKinds()) {
    PolicyHarness h;
    auto policy = h.Make(kind, kK, /*fifo_segment_bytes=*/1024);
    EvictionAuditTrail trail;
    policy->set_audit_trail(&trail);
    IngestMixed(&h, policy.get());
    const size_t freed = policy->Flush(1 << 14);

    uint64_t audited = 0;
    for (const EvictionAuditRecord& r : trail.Records()) {
      audited += r.bytes_freed;
    }
    EXPECT_EQ(audited, freed) << PolicyKindName(kind);
  }
}

TEST(EvictionAuditTest, KFlushingVictimsCarryPhaseMetadata) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  EvictionAuditTrail trail;
  policy->set_audit_trail(&trail);
  IngestMixed(&h, policy.get());
  // Large enough request to push the cycle through Phases 2/3 after
  // Phase 1's trims.
  policy->Flush(1 << 14);

  bool saw_phase1 = false, saw_heap_phase = false;
  for (const EvictionAuditRecord& r : trail.Records()) {
    ASSERT_GE(r.phase, 1);
    ASSERT_LE(r.phase, 3);
    EXPECT_NE(r.term, kInvalidTermId) << "kFlushing victims are index entries";
    EXPECT_EQ(r.record_id, kInvalidMicroblogId);
    if (r.phase == 1) {
      saw_phase1 = true;
      // Phase 1 trims over-k entries without a heap: no rank, no order key.
      EXPECT_EQ(r.heap_rank, -1);
      EXPECT_EQ(r.order_key, 0u);
      EXPECT_EQ(r.entries_evicted, 0u) << "trimming never removes the entry";
    } else {
      saw_heap_phase = true;
      // Phase 2/3 victims come out of SelectVictims: heap rank is their
      // position in the selection order, order key what the heap compared.
      EXPECT_GE(r.heap_rank, 0);
      EXPECT_GT(r.order_key, 0u);
    }
  }
  EXPECT_TRUE(saw_phase1);
  EXPECT_TRUE(saw_heap_phase);
}

TEST(EvictionAuditTest, LruVictimsArePerRecord) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  EvictionAuditTrail trail;
  policy->set_audit_trail(&trail);
  IngestMixed(&h, policy.get());
  policy->Flush(4096);

  ASSERT_GT(trail.size(), 0u);
  for (const EvictionAuditRecord& r : trail.Records()) {
    EXPECT_EQ(r.phase, 1) << "LRU is single-phase";
    EXPECT_EQ(r.term, kInvalidTermId) << "LRU evicts records, not entries";
    EXPECT_NE(r.record_id, kInvalidMicroblogId);
    EXPECT_EQ(r.records_flushed, 1u) << "one victim per unlinked record";
    EXPECT_GT(r.bytes_freed, 0u);
  }
}

TEST(EvictionAuditTest, FifoVictimsArePerSegment) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kFifo, kK, /*fifo_segment_bytes=*/1024);
  EvictionAuditTrail trail;
  policy->set_audit_trail(&trail);
  IngestMixed(&h, policy.get());
  policy->Flush(4096);

  ASSERT_GT(trail.size(), 0u);
  for (const EvictionAuditRecord& r : trail.Records()) {
    EXPECT_EQ(r.phase, 1) << "FIFO is single-phase";
    EXPECT_EQ(r.term, kInvalidTermId) << "a segment is not one entry";
    EXPECT_EQ(r.record_id, kInvalidMicroblogId);
    EXPECT_GT(r.records_flushed, 0u) << "a segment holds many records";
    EXPECT_GT(r.bytes_freed, 0u);
  }
}

TEST(EvictionAuditTest, ReconciliationDetectsDrift) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kKFlushing, kK);
  EvictionAuditTrail trail;
  policy->set_audit_trail(&trail);
  IngestMixed(&h, policy.get());
  policy->Flush(4096);
  ASSERT_TRUE(ReconcileAuditWithStats(trail.Records(), policy->stats()).ok());

  // A fabricated extra victim must break the per-phase identity.
  std::vector<EvictionAuditRecord> tampered = trail.Records();
  EvictionAuditRecord extra;
  extra.phase = 1;
  extra.postings_dropped = 1;
  extra.bytes_freed = 64;
  tampered.push_back(extra);
  EXPECT_FALSE(ReconcileAuditWithStats(tampered, policy->stats()).ok());

  // A record claiming a phase outside 1..3 is rejected outright.
  std::vector<EvictionAuditRecord> bad_phase = trail.Records();
  EvictionAuditRecord rogue;
  rogue.phase = 4;
  bad_phase.push_back(rogue);
  EXPECT_FALSE(ReconcileAuditWithStats(bad_phase, policy->stats()).ok());
}

}  // namespace
}  // namespace kflush
