// kFlushing under a non-temporal ranking (paper §IV-B): scores are fixed
// on arrival, posting lists stay score-ordered, and Phase 1 trims the
// *lowest-scored* postings — which under popularity ranking are not the
// oldest ones.

#include <gtest/gtest.h>

#include "../testing/test_util.h"
#include "core/query_engine.h"
#include "core/store.h"

namespace kflush {
namespace {

using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr uint32_t kK = 3;

TEST(RankingFlushTest, Phase1TrimsLowestScoredNotOldest) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK);
  opts.ranking = RankingKind::kPopularity;
  // Isolate Phase 1 (Phases 2/3 would evict the only entry wholesale at
  // this tiny data volume).
  opts.enable_phase2 = false;
  opts.enable_phase3 = false;
  MicroblogStore store(opts);

  // One early celebrity post and five later nobody posts on keyword 7.
  Microblog celebrity = MakeBlog(1, 1000, {7});
  celebrity.follower_count = 10'000'000;
  ASSERT_TRUE(store.Insert(celebrity).ok());
  for (MicroblogId id = 2; id <= 6; ++id) {
    Microblog nobody = MakeBlog(id, id * 1000, {7});
    nobody.follower_count = 0;
    ASSERT_TRUE(store.Insert(nobody).ok());
  }
  ASSERT_EQ(store.policy()->EntrySize(7), 6u);

  store.FlushOnce();  // Phase 1 trims the entry to k = 3

  std::vector<MicroblogId> ids;
  store.policy()->QueryTerm(7, kK, &ids, false);
  ASSERT_EQ(ids.size(), kK);
  // The old celebrity post outranks the newer nobodies and must survive;
  // a temporal policy would have flushed it first.
  EXPECT_EQ(ids[0], 1u);
  // Survivors after it: the most recent nobodies.
  EXPECT_EQ(ids[1], 6u);
  EXPECT_EQ(ids[2], 5u);
  // The trimmed lowest-scored posts are queryable via the disk tier.
  std::vector<Posting> disk_postings;
  ASSERT_TRUE(store.disk()->QueryTerm(7, 100, &disk_postings).ok());
  EXPECT_EQ(disk_postings.size(), 3u);
}

TEST(RankingFlushTest, QueryAnswersFollowRankingAcrossMemoryAndDisk) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kKFlushing, 1 << 20, kK);
  opts.ranking = RankingKind::kPopularity;
  MicroblogStore store(opts);
  QueryEngine engine(&store);

  for (MicroblogId id = 1; id <= 10; ++id) {
    Microblog blog = MakeBlog(id, id * 1000, {7});
    // Alternate famous / unknown authors.
    blog.follower_count = (id % 2 == 0) ? 5'000'000 : 0;
    ASSERT_TRUE(store.Insert(blog).ok());
  }
  store.FlushOnce();

  TopKQuery q;
  q.terms = {7};
  q.type = QueryType::kSingle;
  q.k = 8;
  auto result = engine.Execute(q);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->results.size(), 8u);
  // Merged memory+disk answer must be globally score-descending.
  PopularityRanking ranking;
  for (size_t i = 1; i < result->results.size(); ++i) {
    EXPECT_GE(ranking.Score(result->results[i - 1]),
              ranking.Score(result->results[i]));
  }
  // The five famous authors outrank every unknown.
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(result->results[i].id % 2, 0u) << "position " << i;
  }
}

TEST(RankingFlushTest, FifoSegmentsMergeCorrectlyUnderPopularity) {
  StoreOptions opts = SmallStoreOptions(PolicyKind::kFifo, 1 << 20, kK);
  opts.ranking = RankingKind::kPopularity;
  MicroblogStore store(opts);
  // Interleave famous/unknown across enough volume to span segments.
  for (MicroblogId id = 1; id <= 200; ++id) {
    Microblog blog = MakeBlog(id, id * 1000, {7},
                              /*user=*/1, std::string(300, 'x'));
    blog.follower_count = (id % 10 == 0) ? 1'000'000 : 0;
    ASSERT_TRUE(store.Insert(blog).ok());
  }
  std::vector<MicroblogId> ids;
  store.policy()->QueryTerm(7, 5, &ids, false);
  ASSERT_EQ(ids.size(), 5u);
  // All five best-ranked are famous (multiples of 10), newest first.
  for (MicroblogId id : ids) {
    EXPECT_EQ(id % 10, 0u);
  }
  EXPECT_EQ(ids[0], 200u);
}

}  // namespace
}  // namespace kflush
