// The §III-C design choice: Phase 3 evicts least-recently-QUERIED entries.
// These tests pin the mechanism (queried entries survive; unqueried ones
// go) and the ablation switch (ordering by arrival instead).

#include <gtest/gtest.h>

#include "../testing/policy_harness.h"
#include "policy/kflushing_policy.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 3;

// Three exactly-k entries; 1 arrives first but is queried last. Under
// query-time ordering the *unqueried* entry goes; under arrival-time
// ordering the *oldest-arrived* goes.
struct Scenario {
  PolicyHarness h;
  std::unique_ptr<KFlushingPolicy> policy;

  explicit Scenario(bool by_query_time) {
    KFlushingOptions opts;
    opts.phase3_by_query_time = by_query_time;
    policy = std::make_unique<KFlushingPolicy>(h.ctx(), kK, opts);
    MicroblogId id = 1;
    for (KeywordId kw : {1, 2, 3}) {
      for (uint32_t i = 0; i < kK; ++i) h.Ingest(policy.get(), id++, {kw});
    }
    // Query entries 1 and 2 (entry 3 stays unqueried).
    h.Query(policy.get(), 1, kK);
    h.Query(policy.get(), 2, kK);
  }
};

TEST(Phase3OrderingTest, QueryTimeOrderingEvictsUnqueried) {
  Scenario setup(/*by_query_time=*/true);
  setup.policy->Flush(600);  // roughly one entry's worth
  EXPECT_EQ(setup.policy->EntrySize(3), 0u);  // never queried
  EXPECT_EQ(setup.policy->EntrySize(1), kK);
  EXPECT_EQ(setup.policy->EntrySize(2), kK);
}

TEST(Phase3OrderingTest, ArrivalOrderingEvictsOldest) {
  Scenario setup(/*by_query_time=*/false);
  setup.policy->Flush(600);
  EXPECT_EQ(setup.policy->EntrySize(1), 0u);  // oldest arrivals
  EXPECT_EQ(setup.policy->EntrySize(2), kK);
  EXPECT_EQ(setup.policy->EntrySize(3), kK);
}

TEST(Phase3OrderingTest, RepeatQueriesRefreshRecency) {
  PolicyHarness h;
  KFlushingOptions opts;
  KFlushingPolicy policy(h.ctx(), kK, opts);
  MicroblogId id = 1;
  for (KeywordId kw : {1, 2}) {
    for (uint32_t i = 0; i < kK; ++i) h.Ingest(&policy, id++, {kw});
  }
  // Query 1, then 2, then 1 again: 2 is now the least recently queried.
  h.Query(&policy, 1, kK);
  h.Query(&policy, 2, kK);
  h.Query(&policy, 1, kK);
  policy.Flush(600);
  EXPECT_EQ(policy.EntrySize(1), kK);
  EXPECT_EQ(policy.EntrySize(2), 0u);
}

}  // namespace
}  // namespace kflush
