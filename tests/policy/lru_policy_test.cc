#include "policy/lru_policy.h"

#include <gtest/gtest.h>

#include <thread>

#include "../testing/policy_harness.h"

namespace kflush {
namespace {

using testing_util::PolicyHarness;

constexpr uint32_t kK = 5;

TEST(LruPolicyTest, TracksEveryInsertedRecord) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  auto* lru = static_cast<LruPolicy*>(policy.get());
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  EXPECT_EQ(lru->LruListSize(), 10u);
  EXPECT_EQ(policy->AuxMemoryBytes(), 10 * LruPolicy::kBytesPerNode);
}

TEST(LruPolicyTest, EvictsColdestFirst) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  // Flush a little: the oldest-inserted, never-accessed records go first.
  const size_t small = 2 * RawDataStore::RecordBytes(
                               testing_util::MakeBlog(1, 1, {1}));
  policy->Flush(small);
  EXPECT_FALSE(h.raw().Contains(1));
  EXPECT_TRUE(h.raw().Contains(10));
}

TEST(LruPolicyTest, ResultAccessProtectsFromEviction) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  for (MicroblogId id = 1; id <= 10; ++id) h.Ingest(policy.get(), id, {1});
  // Touch the two oldest records as query results.
  policy->OnResultAccess({1, 2});
  const size_t small = 2 * RawDataStore::RecordBytes(
                               testing_util::MakeBlog(1, 1, {1}));
  policy->Flush(small);
  // 1 and 2 were moved to the MRU head; 3 and 4 are now coldest.
  EXPECT_TRUE(h.raw().Contains(1));
  EXPECT_TRUE(h.raw().Contains(2));
  EXPECT_FALSE(h.raw().Contains(3));
}

TEST(LruPolicyTest, EvictionRemovesFromAllEntries) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  h.Ingest(policy.get(), 1, {1, 2, 3});
  h.Ingest(policy.get(), 2, {1});
  const size_t one = RawDataStore::RecordBytes(
      testing_util::MakeBlog(1, 1, {1, 2, 3}));
  policy->Flush(one);
  // Record 1 (coldest) evicted from every entry it appeared in.
  EXPECT_FALSE(h.raw().Contains(1));
  EXPECT_EQ(policy->EntrySize(1), 1u);
  EXPECT_EQ(policy->EntrySize(2), 0u);
  EXPECT_EQ(policy->EntrySize(3), 0u);
  EXPECT_EQ(h.disk().NumPostings(), 3u);
  EXPECT_EQ(h.disk().NumRecords(), 1u);
}

TEST(LruPolicyTest, FlushEverythingThenContinue) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  auto* lru = static_cast<LruPolicy*>(policy.get());
  for (MicroblogId id = 1; id <= 5; ++id) h.Ingest(policy.get(), id, {1});
  policy->Flush(~size_t{0} >> 1);
  EXPECT_EQ(h.raw().size(), 0u);
  EXPECT_EQ(lru->LruListSize(), 0u);
  EXPECT_EQ(policy->AuxMemoryBytes(), 0u);
  h.Ingest(policy.get(), 6, {1});
  EXPECT_EQ(policy->EntrySize(1), 1u);
}

TEST(LruPolicyTest, KFilledAndSizes) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  for (MicroblogId id = 1; id <= 7; ++id) h.Ingest(policy.get(), id, {1});
  h.Ingest(policy.get(), 8, {2});
  EXPECT_EQ(policy->NumKFilledTerms(), 1u);
  EXPECT_EQ(policy->NumTerms(), 2u);
}

TEST(LruPolicyTest, ConcurrentAccessAndInsertKeepsListConsistent) {
  PolicyHarness h;
  auto policy = h.Make(PolicyKind::kLru, kK);
  auto* lru = static_cast<LruPolicy*>(policy.get());
  for (MicroblogId id = 1; id <= 1000; ++id) {
    h.Ingest(policy.get(), id, {static_cast<KeywordId>(id % 10)});
  }
  std::thread touch_thread([&] {
    for (int round = 0; round < 200; ++round) {
      std::vector<MicroblogId> ids;
      for (MicroblogId id = 1; id <= 50; ++id) ids.push_back(id);
      policy->OnResultAccess(ids);
    }
  });
  std::thread query_thread([&] {
    std::vector<MicroblogId> out;
    for (int round = 0; round < 200; ++round) {
      out.clear();
      policy->QueryTerm(round % 10, kK, &out, true);
      policy->OnResultAccess(out);
    }
  });
  touch_thread.join();
  query_thread.join();
  EXPECT_EQ(lru->LruListSize(), 1000u);
}

}  // namespace
}  // namespace kflush
