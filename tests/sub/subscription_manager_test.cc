// SubscriptionManager unit tests: spec validation, snapshot seeding,
// incremental enter/exit publication, SetK shrink/grow, the
// eviction-refill path (provably a no-op on a correct standing result),
// notifier wiring, and the delta accounting invariant
// sub.deltas_published == sub.deltas_pushed + sub.deltas_dropped_on_disconnect.

#include "sub/subscription_manager.h"

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "core/query_engine.h"
#include "core/store.h"
#include "gtest/gtest.h"
#include "testing/sub_fold.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::DeltaFolder;
using testing_util::MakeBlog;
using testing_util::RecordsEqual;
using testing_util::SmallStoreOptions;

class SubscriptionManagerTest : public ::testing::Test {
 protected:
  explicit SubscriptionManagerTest(PolicyKind policy = PolicyKind::kFifo)
      : store_(SmallStoreOptions(policy)),
        engine_(&store_),
        subs_(MakeSubscriptions(&store_, &engine_)) {}

  /// Inserts a record with a pre-stamped id (so tests know it) and keeps a
  /// copy for byte-identity checks.
  const Microblog& Insert(MicroblogId id, Timestamp ts, KeywordId term) {
    Microblog blog = MakeBlog(id, ts, {term});
    kept_.push_back(blog);
    EXPECT_TRUE(store_.Insert(std::move(blog)).ok());
    return kept_.back();
  }

  uint64_t Counter(const std::string& name) {
    return subs_->metrics_registry()->counter(name)->value();
  }

  void ExpectAccountingInvariant() {
    EXPECT_EQ(Counter("sub.deltas_published"),
              Counter("sub.deltas_pushed") +
                  Counter("sub.deltas_dropped_on_disconnect"));
  }

  MicroblogStore store_;
  QueryEngine engine_;
  std::unique_ptr<SubscriptionManager> subs_;
  std::vector<Microblog> kept_;
};

SubscriptionSpec KeywordSpec(TermId term, uint32_t k) {
  SubscriptionSpec spec;
  spec.kind = SubKind::kKeyword;
  spec.k = k;
  spec.term = term;
  return spec;
}

TEST_F(SubscriptionManagerTest, RejectsInvalidSpecs) {
  // k out of range.
  EXPECT_TRUE(subs_->Subscribe(KeywordSpec(7, 0)).status().IsInvalidArgument());
  EXPECT_TRUE(
      subs_->Subscribe(KeywordSpec(7, 200000)).status().IsInvalidArgument());
  // Keyword subscription without a term.
  EXPECT_TRUE(subs_->Subscribe(KeywordSpec(kInvalidTermId, 5))
                  .status()
                  .IsInvalidArgument());
  // Kind/attribute mismatches on this keyword deployment.
  SubscriptionSpec user;
  user.kind = SubKind::kUser;
  user.k = 5;
  user.user = 42;
  EXPECT_TRUE(subs_->Subscribe(user).status().IsInvalidArgument());
  SubscriptionSpec area;
  area.kind = SubKind::kArea;
  area.k = 5;
  area.box = {0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(subs_->Subscribe(area).status().IsInvalidArgument());
  EXPECT_EQ(subs_->num_active(), 0u);
  EXPECT_EQ(Counter("sub.registered"), 0u);
}

TEST_F(SubscriptionManagerTest, SubscribeWithoutStoreFails) {
  SubscriptionManager bare(nullptr);
  EXPECT_TRUE(bare.Subscribe(KeywordSpec(7, 5)).status().IsInvalidArgument());
}

TEST_F(SubscriptionManagerTest, UnknownIdsAreNotFound) {
  EXPECT_TRUE(subs_->Unsubscribe(999).IsNotFound());
  EXPECT_TRUE(subs_->SetK(999, 5).IsNotFound());
  std::vector<SubDelta> out;
  EXPECT_FALSE(subs_->DrainDeltas(999, &out));
  std::vector<SubMember> members;
  EXPECT_FALSE(subs_->SnapshotMembers(999, &members));
}

TEST_F(SubscriptionManagerTest, SeedsFromExistingRecords) {
  for (MicroblogId id = 1; id <= 10; ++id) {
    Insert(id, 1000 + id, /*term=*/7);
    Insert(100 + id, 1000 + id, /*term=*/8);  // other term: must not leak in
  }
  auto sub = subs_->Subscribe(KeywordSpec(7, 5));
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(subs_->num_active(), 1u);

  std::vector<SubDelta> deltas;
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_EQ(deltas.size(), 5u);
  DeltaFolder fold;
  ASSERT_TRUE(fold.ApplyAll(deltas));
  // Top-5 on term 7 by (score desc, id desc): ids 10..6, seeded best-first.
  ASSERT_EQ(fold.members().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fold.members()[i].id, 10 - i);
  }
  // Enter deltas carry the full record, byte-identical to what was stored.
  for (const SubDelta& delta : deltas) {
    auto it = std::find_if(kept_.begin(), kept_.end(), [&](const Microblog& b) {
      return b.id == delta.id;
    });
    ASSERT_NE(it, kept_.end());
    EXPECT_TRUE(RecordsEqual(delta.record, *it));
  }
  // Folded state equals the live standing result.
  std::vector<SubMember> members;
  ASSERT_TRUE(subs_->SnapshotMembers(*sub, &members));
  EXPECT_TRUE(fold.MatchesReference(members));
}

TEST_F(SubscriptionManagerTest, PublishesEntersAndDisplacementExits) {
  auto sub = subs_->Subscribe(KeywordSpec(7, 2));
  ASSERT_TRUE(sub.ok());
  DeltaFolder fold;
  std::vector<SubDelta> deltas;

  Insert(1, 1001, 7);
  Insert(2, 1002, 7);
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_TRUE(fold.ApplyAll(deltas));
  EXPECT_EQ(fold.members().size(), 2u);

  // A better record displaces the worst member: exactly one exit (id 1,
  // the lowest score) then one enter.
  deltas.clear();
  Insert(3, 1003, 7);
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_EQ(deltas.size(), 2u);
  EXPECT_EQ(deltas[0].kind, SubDeltaKind::kExit);
  EXPECT_EQ(deltas[0].id, 1u);
  EXPECT_EQ(deltas[1].kind, SubDeltaKind::kEnter);
  EXPECT_EQ(deltas[1].id, 3u);
  ASSERT_TRUE(fold.ApplyAll(deltas));

  // A record below the full top-k publishes nothing.
  deltas.clear();
  Insert(4, 900, 7);
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  EXPECT_TRUE(deltas.empty());

  std::vector<SubMember> members;
  ASSERT_TRUE(subs_->SnapshotMembers(*sub, &members));
  EXPECT_TRUE(fold.MatchesReference(members));
}

TEST_F(SubscriptionManagerTest, SetKShrinkEmitsExitsForTrimmedTail) {
  for (MicroblogId id = 1; id <= 6; ++id) Insert(id, 1000 + id, 7);
  auto sub = subs_->Subscribe(KeywordSpec(7, 5));
  ASSERT_TRUE(sub.ok());
  std::vector<SubDelta> deltas;
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  DeltaFolder fold;
  ASSERT_TRUE(fold.ApplyAll(deltas));

  deltas.clear();
  ASSERT_TRUE(subs_->SetK(*sub, 2).ok());
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_EQ(deltas.size(), 3u);  // exits for ranks 3..5 (ids 4, 3, 2)
  for (const SubDelta& delta : deltas) {
    EXPECT_EQ(delta.kind, SubDeltaKind::kExit);
  }
  ASSERT_TRUE(fold.ApplyAll(deltas));
  ASSERT_EQ(fold.members().size(), 2u);
  EXPECT_EQ(fold.members()[0].id, 6u);
  EXPECT_EQ(fold.members()[1].id, 5u);
}

TEST_F(SubscriptionManagerTest, SetKGrowRefillsFromSnapshot) {
  for (MicroblogId id = 1; id <= 6; ++id) Insert(id, 1000 + id, 7);
  auto sub = subs_->Subscribe(KeywordSpec(7, 2));
  ASSERT_TRUE(sub.ok());
  std::vector<SubDelta> deltas;
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  DeltaFolder fold;
  ASSERT_TRUE(fold.ApplyAll(deltas));
  EXPECT_EQ(fold.members().size(), 2u);

  // Growing k rebuilds the larger result from the full record set; the two
  // current members are deduped, the next three enter.
  deltas.clear();
  ASSERT_TRUE(subs_->SetK(*sub, 5).ok());
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_EQ(deltas.size(), 3u);
  ASSERT_TRUE(fold.ApplyAll(deltas));
  ASSERT_EQ(fold.members().size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(fold.members()[i].id, 6 - i);
  }

  // Growing past the record count: the one remaining record enters (the
  // five current members are deduped by the snapshot offer), and a further
  // grow with nothing left publishes nothing at all.
  deltas.clear();
  ASSERT_TRUE(subs_->SetK(*sub, 10).ok());
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_EQ(deltas[0].kind, SubDeltaKind::kEnter);
  EXPECT_EQ(deltas[0].id, 1u);
  ASSERT_TRUE(fold.ApplyAll(deltas));
  ASSERT_EQ(fold.members().size(), 6u);

  deltas.clear();
  ASSERT_TRUE(subs_->SetK(*sub, 20).ok());
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  EXPECT_TRUE(deltas.empty());
}

TEST_F(SubscriptionManagerTest, UnsubscribeCountsUndrainedAsDropped) {
  for (MicroblogId id = 1; id <= 4; ++id) Insert(id, 1000 + id, 7);
  auto sub = subs_->Subscribe(KeywordSpec(7, 5));
  ASSERT_TRUE(sub.ok());
  // Four seed enters are published but never drained.
  EXPECT_EQ(Counter("sub.deltas_published"), 4u);
  ASSERT_TRUE(subs_->Unsubscribe(*sub).ok());
  EXPECT_EQ(Counter("sub.deltas_dropped_on_disconnect"), 4u);
  EXPECT_EQ(Counter("sub.deltas_pushed"), 0u);
  EXPECT_EQ(subs_->num_active(), 0u);
  EXPECT_EQ(Counter("sub.unsubscribed"), 1u);
  ExpectAccountingInvariant();
}

TEST_F(SubscriptionManagerTest, EvictionSchedulesRefillThatIsANoOp) {
  // FIFO evicts whole oldest records, so standing-result members (a k far
  // above the record count makes every record a member) leave memory
  // under flush pressure.
  auto sub = subs_->Subscribe(KeywordSpec(7, 10000));
  ASSERT_TRUE(sub.ok());
  std::vector<uint64_t> notified;
  subs_->set_notifier([&](uint64_t id) { notified.push_back(id); });

  MicroblogId next_id = 1;
  while (!store_.MemoryFull()) {
    Microblog blog = MakeBlog(next_id, 1000 + next_id, {7});
    kept_.push_back(blog);
    ASSERT_TRUE(store_.Insert(std::move(blog)).ok());
    ++next_id;
  }
  std::vector<SubDelta> deltas;
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  DeltaFolder fold;
  ASSERT_TRUE(fold.ApplyAll(deltas));
  const size_t members_before = fold.members().size();
  ASSERT_GT(members_before, 0u);
  EXPECT_FALSE(notified.empty());  // insert-path notifications
  notified.clear();

  ASSERT_GT(store_.FlushOnce(), 0u);
  EXPECT_GT(Counter("sub.member_evictions"), 0u);
  // Every logged member eviction names a record that entered the result.
  std::set<MicroblogId> entered;
  for (const auto& [id, record] : fold.records()) entered.insert(id);
  for (MicroblogId id : subs_->member_eviction_ids()) {
    EXPECT_TRUE(entered.count(id) > 0) << "evicted non-member " << id;
  }
  // The flushing thread notified the holder so a drainer wakes promptly.
  EXPECT_FALSE(notified.empty());

  // The refill re-executes the snapshot with force_disk and must be a
  // no-op: records are insert-only with immutable scores, so eviction to
  // disk cannot change the top-k.
  subs_->ProcessPendingRefills();
  EXPECT_GT(Counter("sub.refills"), 0u);
  deltas.clear();
  ASSERT_TRUE(subs_->DrainDeltas(*sub, &deltas));
  EXPECT_TRUE(deltas.empty());
  std::vector<SubMember> members;
  ASSERT_TRUE(subs_->SnapshotMembers(*sub, &members));
  EXPECT_TRUE(fold.MatchesReference(members));
  EXPECT_EQ(members.size(), members_before);
}

TEST_F(SubscriptionManagerTest, NotifierQuiescesOnClear) {
  auto sub = subs_->Subscribe(KeywordSpec(7, 5));
  ASSERT_TRUE(sub.ok());
  int fires = 0;
  subs_->set_notifier([&](uint64_t) { ++fires; });
  Insert(1, 1001, 7);
  EXPECT_EQ(fires, 1);
  subs_->set_notifier(nullptr);
  Insert(2, 1002, 7);
  EXPECT_EQ(fires, 1);  // cleared notifier never runs again
}

TEST_F(SubscriptionManagerTest, ShutdownHoldsAccountingInvariant) {
  for (MicroblogId id = 1; id <= 8; ++id) Insert(id, 1000 + id, 7);
  auto a = subs_->Subscribe(KeywordSpec(7, 3));
  auto b = subs_->Subscribe(KeywordSpec(7, 5));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Drain one subscription, leave the other undrained.
  std::vector<SubDelta> deltas;
  ASSERT_TRUE(subs_->DrainDeltas(*a, &deltas));
  EXPECT_EQ(deltas.size(), 3u);
  subs_->Shutdown();
  EXPECT_EQ(subs_->num_active(), 0u);
  EXPECT_EQ(Counter("sub.deltas_pushed"), 3u);
  EXPECT_EQ(Counter("sub.deltas_dropped_on_disconnect"), 5u);
  ExpectAccountingInvariant();
  // Idempotent.
  subs_->Shutdown();
  ExpectAccountingInvariant();
}

}  // namespace
}  // namespace kflush
