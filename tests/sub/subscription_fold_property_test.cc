// 500-seed fold property test: under random interleavings of ingest,
// flush cycles, SetK churn, and subscribe/unsubscribe, every
// subscription's drained delta stream must fold — with contiguous
// sequence numbers, no duplicate enters, and no exits of non-members —
// into exactly the brute-force top-k over every record ever ingested,
// and into exactly the manager's live standing result. Policies rotate
// across seeds so all four flush behaviors (including LRU, whose memory
// postings are not a score-prefix) face the same property.

#include <algorithm>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "core/query_engine.h"
#include "core/store.h"
#include "gtest/gtest.h"
#include "sub/subscription_manager.h"
#include "testing/sub_fold.h"
#include "testing/test_util.h"

namespace kflush {
namespace {

using testing_util::AllPolicies;
using testing_util::DeltaFolder;
using testing_util::MakeBlog;
using testing_util::SmallStoreOptions;

constexpr int kSeeds = 500;
constexpr int kOpsPerSeed = 80;
constexpr KeywordId kNumTerms = 4;
constexpr uint32_t kMaxK = 8;

struct LiveSub {
  uint64_t id = 0;
  TermId term = 0;
  uint32_t k = 0;
  DeltaFolder fold;
};

class FoldPropertyRun {
 public:
  explicit FoldPropertyRun(uint64_t seed)
      : rng_(seed),
        store_(SmallStoreOptions(AllPolicies()[seed % AllPolicies().size()],
                                 /*budget=*/64 * 1024)),
        engine_(&store_),
        subs_(MakeSubscriptions(&store_, &engine_)) {}

  void Run() {
    SubscribeOne();  // at least one standing query from the start
    for (int op = 0; op < kOpsPerSeed; ++op) {
      const uint32_t dice = Rand(100);
      if (dice < 55) {
        InsertOne();
      } else if (dice < 65) {
        store_.FlushOnce();
      } else if (dice < 75 && !live_.empty()) {
        LiveSub& sub = live_[Rand(live_.size())];
        sub.k = 1 + Rand(kMaxK);
        ASSERT_TRUE(subs_->SetK(sub.id, sub.k).ok());
      } else if (dice < 80 && live_.size() < 4) {
        SubscribeOne();
      } else if (dice < 85 && live_.size() > 1) {
        const size_t victim = Rand(live_.size());
        ASSERT_TRUE(subs_->Unsubscribe(live_[victim].id).ok());
        live_.erase(live_.begin() + victim);
      } else {
        ProbeAll();
      }
      if (::testing::Test::HasFatalFailure()) return;
    }
    ProbeAll();
    subs_->Shutdown();
    auto* reg = subs_->metrics_registry();
    EXPECT_EQ(reg->counter("sub.deltas_published")->value(),
              reg->counter("sub.deltas_pushed")->value() +
                  reg->counter("sub.deltas_dropped_on_disconnect")->value());
  }

 private:
  uint32_t Rand(size_t bound) {
    return static_cast<uint32_t>(rng_() % bound);
  }

  void InsertOne() {
    Microblog blog = MakeBlog(next_id_++, 1000 + Rand(5000),
                              {static_cast<KeywordId>(Rand(kNumTerms))});
    kept_.push_back(blog);
    ASSERT_TRUE(store_.Insert(std::move(blog)).ok());
  }

  void SubscribeOne() {
    SubscriptionSpec spec;
    spec.kind = SubKind::kKeyword;
    spec.k = 1 + Rand(kMaxK);
    spec.term = static_cast<TermId>(Rand(kNumTerms));
    auto id = subs_->Subscribe(spec);
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    live_.push_back(LiveSub{*id, spec.term, spec.k, DeltaFolder{}});
  }

  /// Reference top-k for one subscription over every record ever ingested
  /// (flushing moves records to disk, it never deletes them).
  std::vector<SubMember> BruteForce(const LiveSub& sub) const {
    std::vector<SubMember> all;
    for (const Microblog& blog : kept_) {
      if (std::find(blog.keywords.begin(), blog.keywords.end(),
                    static_cast<KeywordId>(sub.term)) == blog.keywords.end()) {
        continue;
      }
      all.push_back(SubMember{store_.ranking()->Score(blog), blog.id});
    }
    std::sort(all.begin(), all.end(), [](const SubMember& a, const SubMember& b) {
      return SubMemberBetter(a.score, a.id, b.score, b.id);
    });
    if (all.size() > sub.k) all.resize(sub.k);
    return all;
  }

  void ProbeAll() {
    subs_->ProcessPendingRefills();
    for (LiveSub& sub : live_) {
      std::vector<SubDelta> deltas;
      ASSERT_TRUE(subs_->DrainDeltas(sub.id, &deltas));
      ASSERT_TRUE(sub.fold.ApplyAll(deltas)) << "sub " << sub.id;
      ASSERT_LE(sub.fold.members().size(), sub.k);
      std::vector<SubMember> members;
      ASSERT_TRUE(subs_->SnapshotMembers(sub.id, &members));
      ASSERT_TRUE(sub.fold.MatchesReference(members))
          << "folded stream diverged from live result, sub " << sub.id;
      ASSERT_TRUE(sub.fold.MatchesReference(BruteForce(sub)))
          << "folded stream diverged from brute force, sub " << sub.id;
    }
  }

  std::mt19937_64 rng_;
  MicroblogStore store_;
  QueryEngine engine_;
  std::unique_ptr<SubscriptionManager> subs_;
  std::vector<Microblog> kept_;
  std::vector<LiveSub> live_;
  MicroblogId next_id_ = 1;
};

TEST(SubscriptionFoldProperty, FiveHundredSeeds) {
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    FoldPropertyRun run(seed);
    run.Run();
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "replay with seed " << seed;
    }
  }
}

}  // namespace
}  // namespace kflush
