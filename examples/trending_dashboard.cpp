// Trending dashboard: the workload the paper's introduction motivates —
// a high-rate tweet stream digested in real time by the threaded
// MicroblogSystem while keyword searches run concurrently. The dashboard
// periodically reports the hottest hashtags, the memory hit ratio, and
// flushing activity, contrasting the kFlushing policy with FIFO.

#include <cstdio>
#include <map>

#include "core/system.h"
#include "gen/query_generator.h"
#include "gen/tweet_generator.h"

using namespace kflush;

namespace {

void RunDashboard(PolicyKind policy) {
  std::printf("\n================ policy: %s ================\n",
              PolicyKindName(policy));

  SystemOptions options;
  options.store.memory_budget_bytes = 16 << 20;
  options.store.k = 20;
  options.store.policy = policy;
  MicroblogSystem system(options);
  system.Start();

  TweetGeneratorOptions stream;
  stream.seed = 99;
  stream.vocabulary_size = 50'000;
  TweetGenerator gen(stream);

  QueryWorkloadOptions workload;
  workload.kind = WorkloadKind::kCorrelated;
  QueryGenerator queries(workload, stream);

  // Five "refresh ticks": ingest a slab of stream, run a burst of user
  // searches, and render the dashboard line.
  for (int tick = 1; tick <= 5; ++tick) {
    std::vector<Microblog> batch;
    gen.FillBatch(60'000, &batch);
    // Remember the hottest tags of this slab for display.
    std::map<KeywordId, int> tag_counts;
    for (const Microblog& blog : batch) {
      for (KeywordId kw : blog.keywords) tag_counts[kw]++;
    }
    system.Submit(std::move(batch));

    int hits = 0, total = 0;
    for (int q = 0; q < 2'000; ++q) {
      auto result = system.Query(queries.Next());
      if (result.ok()) {
        ++total;
        if (result->memory_hit) ++hits;
      }
    }

    // Top-3 tags by slab frequency.
    std::vector<std::pair<int, KeywordId>> hot;
    for (const auto& [kw, count] : tag_counts) hot.push_back({count, kw});
    std::sort(hot.rbegin(), hot.rend());

    const MicroblogStore* store = system.store();
    std::printf(
        "tick %d | digested=%8llu | hot tags:", tick,
        static_cast<unsigned long long>(system.digested()));
    for (size_t i = 0; i < 3 && i < hot.size(); ++i) {
      std::printf(" #tag%u(%d)", hot[i].second, hot[i].first);
    }
    std::printf(" | hit ratio %5.1f%% | k-filled keywords %zu | flushes %llu\n",
                total == 0 ? 0.0 : 100.0 * hits / total,
                store->policy()->NumKFilledTerms(),
                static_cast<unsigned long long>(
                    store->ingest_stats().flush_triggers));
  }
  system.Stop();
}

}  // namespace

int main() {
  std::printf("trending dashboard: live keyword search over a tweet stream\n"
              "(watch the hit ratio: query-aware flushing keeps more\n"
              "searches answerable from memory under the same budget)\n");
  RunDashboard(PolicyKind::kFifo);
  RunDashboard(PolicyKind::kKFlushing);
  return 0;
}
