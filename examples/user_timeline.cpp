// User timelines: the third search attribute (paper §IV-A / Figure 12 —
// "find the k most recent microblogs posted by this user", Twitter's
// profile view). Contrasts all four flushing policies on how many user
// timelines stay fully answerable from memory under the same budget.

#include <cstdio>

#include "core/query_engine.h"
#include "core/store.h"
#include "gen/tweet_generator.h"

using namespace kflush;

namespace {

struct Outcome {
  size_t k_filled_users = 0;
  double hit_ratio = 0.0;
};

Outcome RunPolicy(PolicyKind policy) {
  StoreOptions options;
  options.memory_budget_bytes = 8 << 20;
  options.k = 20;
  options.policy = policy;
  options.attribute = AttributeKind::kUser;
  MicroblogStore store(options);
  QueryEngine engine(&store);

  TweetGeneratorOptions stream;
  stream.seed = 31;
  stream.num_users = 20'000;
  TweetGenerator gen(stream);
  for (int i = 0; i < 250'000; ++i) {
    Status s = store.Insert(gen.Next());
    if (!s.ok()) std::abort();
  }

  // Timeline lookups for a spread of users, activity-weighted like real
  // profile traffic (active users get visited more).
  Rng rng(17);
  ZipfGenerator visitors(stream.num_users, stream.user_zipf_s);
  int hits = 0, total = 0;
  for (int q = 0; q < 5'000; ++q) {
    const UserId user = visitors.Sample(&rng) + 1;
    auto result = engine.SearchUser(user);
    if (result.ok()) {
      ++total;
      if (result->memory_hit) ++hits;
    }
  }

  Outcome outcome;
  outcome.k_filled_users = store.policy()->NumKFilledTerms();
  outcome.hit_ratio = total == 0 ? 0.0 : 100.0 * hits / total;
  return outcome;
}

}  // namespace

int main() {
  std::printf("user timelines: \"show me @user's last 20 posts\" under a\n"
              "fixed memory budget, per flushing policy\n\n");
  std::printf("%-14s %20s %12s\n", "policy", "k-filled timelines",
              "hit ratio");
  for (PolicyKind policy :
       {PolicyKind::kFifo, PolicyKind::kLru, PolicyKind::kKFlushing,
        PolicyKind::kKFlushingMK}) {
    Outcome outcome = RunPolicy(policy);
    std::printf("%-14s %20zu %11.1f%%\n", PolicyKindName(policy),
                outcome.k_filled_users, outcome.hit_ratio);
  }
  std::printf("\nhighly active users bury everyone else's timelines under\n"
              "temporal flushing; kFlushing trims them to k and keeps many\n"
              "more timelines fully memory-resident (paper Figure 12).\n");
  return 0;
}
