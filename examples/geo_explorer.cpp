// Geo explorer: location search over microblogs (paper §IV-A / Figure 11
// scenario — "find the k most recent microblogs posted in this area").
// Demonstrates the spatial attribute: tweets are indexed by ~4 mi² grid
// tile, point queries hit the containing tile, and bounding-box queries
// fan out as an OR over the overlapping tiles.

#include <cstdio>

#include "core/query_engine.h"
#include "core/store.h"
#include "gen/tweet_generator.h"
#include "index/spatial_grid.h"

using namespace kflush;

int main() {
  StoreOptions options;
  options.memory_budget_bytes = 16 << 20;
  options.k = 10;
  options.policy = PolicyKind::kKFlushing;
  options.attribute = AttributeKind::kSpatial;
  MicroblogStore store(options);
  QueryEngine engine(&store);

  // A stream concentrated on a handful of metro hotspots.
  TweetGeneratorOptions stream;
  stream.seed = 7;
  stream.num_hotspots = 16;
  stream.hotspot_stddev_degrees = 0.03;
  TweetGenerator gen(stream);
  for (int i = 0; i < 300'000; ++i) {
    Status s = store.Insert(gen.Next());
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("ingested %llu geotagged microblogs; %zu active tiles, "
              "%zu k-filled; %llu flushes\n",
              static_cast<unsigned long long>(store.ingest_stats().inserted),
              store.policy()->NumTerms(), store.policy()->NumKFilledTerms(),
              static_cast<unsigned long long>(
                  store.ingest_stats().flush_triggers));

  // Point query at the busiest hotspot center.
  const GeoPoint hotspot = MakeHotspots(stream)[0];
  auto point = engine.SearchLocation(hotspot.lat, hotspot.lon);
  if (point.ok()) {
    std::printf("\npoint query @(%.3f, %.3f): %zu results, %s\n", hotspot.lat,
                hotspot.lon, point->results.size(),
                point->memory_hit ? "memory HIT" : "memory miss");
    for (size_t i = 0; i < 3 && i < point->results.size(); ++i) {
      const Microblog& blog = point->results[i];
      std::printf("  [%llu] (%.4f, %.4f) by user %llu\n",
                  static_cast<unsigned long long>(blog.id), blog.location.lat,
                  blog.location.lon,
                  static_cast<unsigned long long>(blog.user_id));
    }
  }

  // Bounding-box query: ~0.2 x 0.2 degrees around the hotspot, evaluated
  // as an OR across the overlapping grid tiles.
  const auto* spatial =
      dynamic_cast<const SpatialAttribute*>(store.extractor());
  BoundingBox box{hotspot.lat - 0.1, hotspot.lon - 0.1, hotspot.lat + 0.1,
                  hotspot.lon + 0.1};
  TopKQuery area_query;
  area_query.terms = TilesOverlapping(spatial->mapper(), box, /*max_tiles=*/64);
  area_query.type = QueryType::kOr;
  auto area = engine.Execute(area_query);
  if (area.ok()) {
    std::printf("\nbox query over %zu tiles: %zu results, %s\n",
                area_query.terms.size(), area->results.size(),
                area->memory_hit ? "memory HIT" : "memory miss");
    size_t inside = 0;
    for (const Microblog& blog : area->results) {
      if (box.Contains(blog.location)) ++inside;
    }
    std::printf("  %zu/%zu results inside the requested box\n", inside,
                area->results.size());
  }

  // A quiet corner of the map: guaranteed thin tile -> disk fallback path.
  auto quiet = engine.SearchLocation(46.9, -102.8);
  if (quiet.ok()) {
    std::printf("\nquiet-area query: %zu results, %s (disk records read: "
                "%llu)\n",
                quiet->results.size(),
                quiet->memory_hit ? "memory HIT" : "memory miss",
                static_cast<unsigned long long>(
                    store.disk()->stats().records_read));
  }

  std::printf("\nquery metrics: %s\n", engine.metrics().ToString().c_str());
  return 0;
}
