// Quickstart: the 60-second tour of the kflush public API.
//
//   1. Configure a MicroblogStore with a memory budget and the kFlushing
//      policy (paper defaults: k = 20, flush budget B = 10%).
//   2. Ingest microblogs from raw text — keywords are tokenized and
//      interned automatically.
//   3. Run top-k keyword searches through the QueryEngine, including
//      multi-keyword AND / OR queries.
//   4. Watch the memory budget enforce itself: overflow is flushed to the
//      disk tier, and queries transparently fall back to it.

#include <cstdio>

#include "core/query_engine.h"
#include "core/store.h"

using namespace kflush;

int main() {
  // 1. A small store: 4 MB budget, top-5 queries, kFlushing policy.
  StoreOptions options;
  options.memory_budget_bytes = 4 << 20;
  options.flush_fraction = 0.10;
  options.k = 5;
  options.policy = PolicyKind::kKFlushing;
  MicroblogStore store(options);
  QueryEngine engine(&store);

  // 2. Ingest some microblogs.
  const char* posts[] = {
      "big game tonight #nba #lakers",
      "what a finish! #nba",
      "election coverage starts now #politics",
      "traffic on i94 again #mpls",
      "new coffee shop downtown #mpls #coffee",
      "#nba trade rumors heating up",
      "rain all week #mpls",
      "#coffee is life",
      "playoff predictions #nba #basketball",
      "city council vote today #politics #mpls",
  };
  UserId user = 1;
  for (const char* text : posts) {
    Status s = store.InsertText(text, user++, /*followers=*/100);
    if (!s.ok()) {
      std::fprintf(stderr, "insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  std::printf("ingested %llu microblogs, %zu distinct keywords\n",
              static_cast<unsigned long long>(store.ingest_stats().inserted),
              store.dictionary()->size());

  // 3. Top-k searches.
  auto print_result = [](const char* label, const QueryResult& result) {
    std::printf("\n%s  (%s, %zu from memory, %zu from disk)\n", label,
                result.memory_hit ? "memory HIT" : "memory miss",
                result.from_memory, result.from_disk);
    for (const Microblog& blog : result.results) {
      std::printf("  [%llu] %s\n", static_cast<unsigned long long>(blog.id),
                  blog.text.c_str());
    }
  };

  auto nba = engine.SearchKeywords({"nba"}, QueryType::kSingle);
  if (nba.ok()) print_result("top-5 #nba:", *nba);

  auto or_query = engine.SearchKeywords({"coffee", "politics"}, QueryType::kOr);
  if (or_query.ok()) print_result("top-5 #coffee OR #politics:", *or_query);

  auto and_query = engine.SearchKeywords({"nba", "lakers"}, QueryType::kAnd);
  if (and_query.ok()) print_result("top-5 #nba AND #lakers:", *and_query);

  // 4. Memory accounting and hit-ratio metrics.
  std::printf("\n%s\n", store.tracker().ToString().c_str());
  std::printf("query metrics: %s\n", engine.metrics().ToString().c_str());
  return 0;
}
